#include "core/query.h"

#include <algorithm>
#include <map>

#include <memory>

#include "common/metrics.h"
#include "common/simd.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/query_engine.h"
#include "core/query_pipeline.h"
#include "core/signature_filter.h"

namespace walrus {
namespace {

/// Shared bucket shape for all query-path latency histograms: 1us doubling
/// up to ~68s.
std::vector<double> QuerySecondsBuckets() {
  return ExponentialBuckets(1e-6, 2.0, 36);
}

/// Query-funnel metrics (registered once, mutated lock-free per query).
struct QueryPathMetrics {
  Counter* queries;
  Counter* regions_retrieved;
  Counter* candidate_images;
  Histogram* seconds;
  Histogram* extract_seconds;
  Histogram* probe_seconds;
  Histogram* match_seconds;
  /// Signature prefilter tier (DESIGN.md section 16): candidate traffic in
  /// and out plus the Hamming-pruned count (prune ratio = pruned /
  /// candidates_in) and the tier's wall time per query.
  Counter* prefilter_candidates_in;
  Counter* prefilter_pruned;
  Counter* prefilter_candidates_out;
  Histogram* prefilter_seconds;

  static const QueryPathMetrics& Get() {
    static const QueryPathMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      QueryPathMetrics m;
      m.queries = registry.GetCounter("walrus.query.count");
      m.regions_retrieved =
          registry.GetCounter("walrus.query.regions_retrieved");
      m.candidate_images =
          registry.GetCounter("walrus.query.candidate_images");
      m.seconds =
          registry.GetHistogram("walrus.query.seconds", QuerySecondsBuckets());
      m.extract_seconds = registry.GetHistogram(
          "walrus.query.extract_seconds", QuerySecondsBuckets());
      m.probe_seconds = registry.GetHistogram("walrus.query.probe_seconds",
                                              QuerySecondsBuckets());
      m.match_seconds = registry.GetHistogram("walrus.query.match_seconds",
                                              QuerySecondsBuckets());
      m.prefilter_candidates_in =
          registry.GetCounter("walrus.prefilter.candidates_in");
      m.prefilter_pruned = registry.GetCounter("walrus.prefilter.pruned");
      m.prefilter_candidates_out =
          registry.GetCounter("walrus.prefilter.candidates_out");
      m.prefilter_seconds = registry.GetHistogram(
          "walrus.prefilter.seconds", QuerySecondsBuckets());
      return m;
    }();
    return metrics;
  }
};

/// Paged-backend IO counters at a point in time (for per-query deltas).
struct DiskCounters {
  int64_t pages_read = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;

  static DiskCounters Read(const DiskRStarTree* disk) {
    DiskCounters c;
    if (disk != nullptr) {
      c.pages_read = disk->pages_read();
      c.cache_hits = disk->cache_hits();
      c.cache_misses = disk->cache_misses();
    }
    return c;
  }
};

/// One accepted probe hit, recorded flat during traversal (a plain vector
/// push per hit; the by-image grouping happens once at the end, not per
/// candidate).
struct ProbeHit {
  uint64_t image_id;
  RegionPair pair;
};

/// Converts the flat probe-hit list into the canonical candidate list:
/// images ascending, pairs sorted by (query_index, target_index). Each
/// (query region, target region) pair appears at most once, so the sort is
/// a total order and the resulting candidate list is a pure function of the
/// candidate *set* — independent of the tree traversal order that
/// discovered it.
std::vector<CandidateImage> CanonicalCandidates(std::vector<ProbeHit> hits) {
  std::sort(hits.begin(), hits.end(),
            [](const ProbeHit& a, const ProbeHit& b) {
              if (a.image_id != b.image_id) return a.image_id < b.image_id;
              if (a.pair.query_index != b.pair.query_index) {
                return a.pair.query_index < b.pair.query_index;
              }
              return a.pair.target_index < b.pair.target_index;
            });
  std::vector<CandidateImage> candidates;
  for (ProbeHit& hit : hits) {
    if (candidates.empty() || candidates.back().image_id != hit.image_id) {
      candidates.push_back({hit.image_id, {}});
    }
    candidates.back().pairs.push_back(hit.pair);
  }
  return candidates;
}

}  // namespace

Result<ExtractedQuery> ExtractQueryRegions(const ImageF& query_image,
                                           const WalrusParams& params,
                                           QueryTrace* trace) {
  TraceScope extract_span(trace, "extract");
  WALRUS_ASSIGN_OR_RETURN(std::vector<Region> regions,
                          ExtractRegions(query_image, params, nullptr, trace));
  ExtractedQuery extracted;
  extracted.regions = std::move(regions);
  extracted.query_area =
      static_cast<double>(query_image.width()) * query_image.height();
  return extracted;
}

Result<ExtractedQuery> ExtractSceneQueryRegions(const ImageF& query_image,
                                                const PixelRect& scene,
                                                const WalrusParams& params,
                                                QueryTrace* trace) {
  TraceScope extract_span(trace, "extract");
  WALRUS_ASSIGN_OR_RETURN(
      std::vector<Region> regions,
      ExtractSceneRegions(query_image, scene, params, nullptr, trace));
  if (regions.empty()) {
    return Status::InvalidArgument("scene produced no regions");
  }
  // Region bitmaps are image-relative, so the "query area" must be the
  // pixels the scene's windows can actually cover: the union of all scene
  // region bitmaps. With kQueryOnly normalization a perfect match then
  // scores 1 regardless of how small the marked scene is.
  CoverageBitmap coverable(regions[0].bitmap.side());
  for (const Region& region : regions) {
    coverable.UnionWith(region.bitmap);
  }
  double image_area =
      static_cast<double>(query_image.width()) * query_image.height();
  ExtractedQuery extracted;
  extracted.regions = std::move(regions);
  extracted.query_area = image_area * coverable.CoveredFraction();
  return extracted;
}

Result<std::vector<CandidateImage>> ProbeCandidates(
    const WalrusIndex& index, const std::vector<Region>& query_regions,
    const QueryOptions& options, ProbeDiagnostics* diag, QueryTrace* trace) {
  const bool use_bbox =
      index.params().signature_kind == RegionSignatureKind::kBoundingBox;
  const bool paged = index.is_paged();
  const DiskCounters disk_before = DiskCounters::Read(index.disk_tree());
  int64_t nodes_visited = 0;
  int64_t regions_retrieved = 0;

  // Signature prefilter tier (DESIGN.md section 16): instead of the exact
  // centroid test inline in the traversal, collect raw envelope hits per
  // query region and post-filter each bucket through the signature store
  // (admissible Hamming prune, then a batched exact verification). The
  // accepted candidate set is provably the same either way.
  const bool prefilter = options.signature_prefilter && !use_bbox &&
                         index.signatures().dim() > 0;

  std::vector<ProbeHit> hits;
  hits.reserve(256);
  std::vector<std::vector<uint64_t>> raw_hits;
  if (prefilter) raw_hits.resize(query_regions.size());
  // Records a probe hit after the centroid post-filter. Identical for the
  // batched and per-region paths, so the candidate *set* (and therefore
  // the canonicalized output) cannot depend on which path ran. The kernel
  // table is resolved once for the whole probe stage; the inlined distance
  // test matches RegionsMatchCentroid exactly (full ordered sum vs eps^2).
  const simd::KernelTable& kern = simd::Active();
  const double eps2 =
      static_cast<double>(options.epsilon) * options.epsilon;
  const auto accept = [&](size_t qi, const Rect& rect, uint64_t payload) {
    if (prefilter) {
      // Defer the exact test to the filter tier.
      raw_hits[qi].push_back(payload);
      return;
    }
    const Region& q = query_regions[qi];
    if (!use_bbox) {
      // Exact Euclidean test on the stored centroid (== rect.lo()).
      if (kern.squared_l2_f32(q.centroid.data(), rect.lo().data(),
                              static_cast<int>(q.centroid.size())) > eps2) {
        return;
      }
    }
    uint64_t image_id;
    uint32_t region_id;
    DecodeRegionPayload(payload, &image_id, &region_id);
    ++regions_retrieved;
    hits.push_back(
        {image_id, {static_cast<int>(qi), static_cast<int>(region_id)}});
  };

  if (options.batched_probe && query_regions.size() > 1) {
    // Batched multi-probe: every region's envelope goes down ONE shared
    // traversal (Hilbert-ordered active sets, per-node SIMD filtering).
    static Histogram* const batch_size =
        MetricsRegistry::Global().GetHistogram("walrus.probe.batch_size",
                                               ExponentialBuckets(1, 2, 12));
    std::vector<Rect> probes;
    probes.reserve(query_regions.size());
    for (const Region& q : query_regions) {
      probes.push_back(q.IndexRect(use_bbox).Expanded(options.epsilon));
    }
    batch_size->Observe(static_cast<double>(probes.size()));
    WALRUS_RETURN_IF_ERROR(index.ProbeRangeBatch(
        probes, [&](int qi, const Rect& rect, uint64_t payload) {
          accept(static_cast<size_t>(qi), rect, payload);
          return true;
        }));
    // One traversal for the whole batch: the count is deduplicated nodes,
    // not a per-probe sum.
    if (!paged) nodes_visited = index.tree().last_nodes_visited();
  } else {
    for (size_t qi = 0; qi < query_regions.size(); ++qi) {
      const Region& q = query_regions[qi];
      Rect probe = q.IndexRect(use_bbox).Expanded(options.epsilon);
      WALRUS_RETURN_IF_ERROR(
          index.ProbeRange(probe, [&](const Rect& rect, uint64_t payload) {
            accept(qi, rect, payload);
            return true;
          }));
      if (!paged) nodes_visited += index.tree().last_nodes_visited();
    }
  }

  SignatureFilterCounters filter_counters;
  double filter_seconds = 0.0;
  if (prefilter) {
    TraceScope filter_span(trace, "filter");
    WallTimer filter_timer;
    const SignatureStore& store = index.signatures();
    SignatureFilterScratch scratch;
    for (size_t qi = 0; qi < query_regions.size(); ++qi) {
      const size_t survivors =
          store.FilterCandidates(query_regions[qi].centroid, eps2,
                                 &raw_hits[qi], &scratch, &filter_counters);
      for (size_t i = 0; i < survivors; ++i) {
        uint64_t image_id;
        uint32_t region_id;
        DecodeRegionPayload(raw_hits[qi][i], &image_id, &region_id);
        hits.push_back({image_id, {static_cast<int>(qi),
                                   static_cast<int>(region_id)}});
      }
      regions_retrieved += static_cast<int64_t>(survivors);
    }
    filter_seconds = filter_timer.ElapsedSeconds();
  }

  if (diag != nullptr) {
    diag->regions_retrieved = regions_retrieved;
    diag->nodes_visited = nodes_visited;
    const DiskCounters disk_after = DiskCounters::Read(index.disk_tree());
    diag->pages_read = disk_after.pages_read - disk_before.pages_read;
    diag->cache_hits = disk_after.cache_hits - disk_before.cache_hits;
    diag->cache_misses = disk_after.cache_misses - disk_before.cache_misses;
    diag->filter_seconds = filter_seconds;
    diag->prefilter_candidates_in = filter_counters.candidates_in;
    diag->prefilter_pruned = filter_counters.hamming_pruned;
    diag->prefilter_candidates_out = filter_counters.verified_out;
  }
  return CanonicalCandidates(std::move(hits));
}

Result<std::vector<std::vector<std::pair<uint64_t, double>>>>
ProbeNearestPerRegion(const WalrusIndex& index,
                      const std::vector<Region>& query_regions, int k,
                      ProbeDiagnostics* diag) {
  const bool paged = index.is_paged();
  const DiskCounters disk_before = DiskCounters::Read(index.disk_tree());
  int64_t nodes_visited = 0;

  std::vector<std::vector<std::pair<uint64_t, double>>> neighbors;
  neighbors.reserve(query_regions.size());
  for (const Region& q : query_regions) {
    WALRUS_ASSIGN_OR_RETURN(auto found, index.ProbeNearest(q.centroid, k));
    if (!paged) nodes_visited += index.tree().last_nodes_visited();
    neighbors.push_back(std::move(found));
  }

  if (diag != nullptr) {
    int64_t retrieved = 0;
    for (const auto& per_region : neighbors) {
      retrieved += static_cast<int64_t>(per_region.size());
    }
    diag->regions_retrieved = retrieved;
    diag->nodes_visited = nodes_visited;
    const DiskCounters disk_after = DiskCounters::Read(index.disk_tree());
    diag->pages_read = disk_after.pages_read - disk_before.pages_read;
    diag->cache_hits = disk_after.cache_hits - disk_before.cache_hits;
    diag->cache_misses = disk_after.cache_misses - disk_before.cache_misses;
  }
  return neighbors;
}

std::vector<CandidateImage> CandidatesFromNeighbors(
    const std::vector<std::vector<std::pair<uint64_t, double>>>& neighbors) {
  std::vector<ProbeHit> hits;
  for (size_t qi = 0; qi < neighbors.size(); ++qi) {
    for (const auto& [payload, distance] : neighbors[qi]) {
      (void)distance;
      uint64_t image_id;
      uint32_t region_id;
      DecodeRegionPayload(payload, &image_id, &region_id);
      hits.push_back(
          {image_id, {static_cast<int>(qi), static_cast<int>(region_id)}});
    }
  }
  return CanonicalCandidates(std::move(hits));
}

Result<std::vector<QueryMatch>> ScoreCandidates(
    const WalrusIndex& index, const std::vector<Region>& query_regions,
    double query_area, const QueryOptions& options,
    const std::vector<CandidateImage>& candidates) {
  std::vector<QueryMatch> matches;
  matches.reserve(candidates.size());
  std::vector<char> materialized;
  for (const CandidateImage& candidate : candidates) {
    std::vector<Region> target_regions;
    double target_area = 0.0;
    if (options.signature_prefilter) {
      // Paired-only materialization: the matchers dereference only target
      // regions named by the pairs (plus target[0]'s bitmap side), so
      // decoding every region of the candidate -- the dominant cost of
      // this stage -- is wasted work. Slot ti is decoded from the same
      // record position the full path would put there, so scores are
      // identical.
      const ImageRecord* record = index.catalog().FindImage(candidate.image_id);
      if (record == nullptr) {
        return Status::NotFound("image id " +
                                std::to_string(candidate.image_id));
      }
      target_regions.resize(record->regions.size());
      materialized.assign(record->regions.size(), 0);
      for (const RegionPair& pair : candidate.pairs) {
        if (!materialized[pair.target_index]) {
          target_regions[pair.target_index] =
              Region::FromRecord(record->regions[pair.target_index]);
          materialized[pair.target_index] = 1;
        }
      }
      if (!record->regions.empty() && !materialized[0]) {
        // The matchers size their union bitmaps from target[0].
        target_regions[0].bitmap =
            CoverageBitmap(static_cast<int>(record->regions[0].bitmap_side));
      }
      target_area = static_cast<double>(record->width) * record->height;
    } else {
      WALRUS_ASSIGN_OR_RETURN(target_regions,
                              index.ImageRegions(candidate.image_id));
      WALRUS_ASSIGN_OR_RETURN(target_area,
                              index.ImageArea(candidate.image_id));
    }
    // Refined matching phase (section 5.5): re-verify pairs with the more
    // detailed signatures where both sides carry them.
    const std::vector<RegionPair>* pairs = &candidate.pairs;
    std::vector<RegionPair> refined_pairs;
    if (options.use_refinement) {
      refined_pairs.reserve(candidate.pairs.size());
      for (const RegionPair& pair : candidate.pairs) {
        const std::vector<float>& q_ref =
            query_regions[pair.query_index].refined_centroid;
        const std::vector<float>& t_ref =
            target_regions[pair.target_index].refined_centroid;
        if (!q_ref.empty() && q_ref.size() == t_ref.size() &&
            !RegionsMatchCentroid(q_ref.data(), t_ref.data(),
                                  static_cast<int>(q_ref.size()),
                                  options.refined_epsilon)) {
          continue;  // refuted at the finer resolution
        }
        refined_pairs.push_back(pair);
      }
      pairs = &refined_pairs;
    }
    MatchResult result =
        options.matcher == MatcherKind::kGreedy
            ? GreedyMatch(query_regions, target_regions, *pairs, query_area,
                          target_area)
            : QuickMatch(query_regions, target_regions, *pairs, query_area,
                         target_area);
    double similarity = result.SimilarityAs(options.normalization, query_area,
                                            target_area);
    if (similarity < options.tau) continue;
    QueryMatch match;
    match.image_id = candidate.image_id;
    match.similarity = similarity;
    match.matching_pairs = static_cast<int>(pairs->size());
    match.pairs_used = result.pairs_used;
    if (options.collect_pairs) match.pairs = std::move(result.used_pairs);
    matches.push_back(std::move(match));
  }
  return matches;
}

void RankMatches(std::vector<QueryMatch>* matches, int top_k) {
  std::sort(matches->begin(), matches->end(),
            [](const QueryMatch& a, const QueryMatch& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.image_id < b.image_id;
            });
  if (top_k > 0 && static_cast<int>(matches->size()) > top_k) {
    matches->resize(top_k);
  }
}

namespace {

/// The matching pipeline behind every single-index query entry point:
/// probe -> score -> rank (the query_pipeline.h stages), plus timing,
/// metrics, and tracing. `trace`, when non-null, receives the
/// probe/match/rank spans; callers own the extract span (they know whether
/// extraction happened at all).
Result<std::vector<QueryMatch>> RunMatchingPipeline(
    const WalrusIndex& index, const std::vector<Region>& query_regions,
    double query_area, const QueryOptions& options, QueryStats* stats,
    QueryTrace* trace) {
  WallTimer timer;
  const QueryPathMetrics& metrics = QueryPathMetrics::Get();
  const bool use_bbox =
      index.params().signature_kind == RegionSignatureKind::kBoundingBox;

  // Region matching (section 5.4): one epsilon-expanded probe (or kNN
  // lookup) per query region.
  std::vector<CandidateImage> candidates;
  ProbeDiagnostics diag;
  double probe_seconds = 0.0;
  {
    TraceScope probe_span(trace, "probe");
    WallTimer probe_timer;
    if (options.knn_per_region > 0 && !use_bbox) {
      // kNN probing: fixed candidate budget per query region.
      WALRUS_ASSIGN_OR_RETURN(
          auto neighbors,
          ProbeNearestPerRegion(index, query_regions, options.knn_per_region,
                                &diag));
      candidates = CandidatesFromNeighbors(neighbors);
    } else {
      WALRUS_ASSIGN_OR_RETURN(
          candidates,
          ProbeCandidates(index, query_regions, options, &diag, trace));
    }
    // Keep the stages disjoint: the signature tier timed itself inside the
    // probe block, so subtract it out of the probe figure.
    probe_seconds = probe_timer.ElapsedSeconds() - diag.filter_seconds;
  }

  // Image matching (section 5.5).
  std::vector<QueryMatch> matches;
  double match_seconds = 0.0;
  {
    TraceScope match_span(trace, "match");
    WallTimer match_timer;
    WALRUS_ASSIGN_OR_RETURN(
        matches, ScoreCandidates(index, query_regions, query_area, options,
                                 candidates));
    match_seconds = match_timer.ElapsedSeconds();
  }

  double rank_seconds = 0.0;
  {
    TraceScope rank_span(trace, "rank");
    WallTimer rank_timer;
    RankMatches(&matches, options.top_k);
    rank_seconds = rank_timer.ElapsedSeconds();
  }

  metrics.queries->Increment();
  metrics.regions_retrieved->Increment(
      static_cast<uint64_t>(diag.regions_retrieved));
  metrics.candidate_images->Increment(candidates.size());
  metrics.seconds->Observe(timer.ElapsedSeconds());
  metrics.probe_seconds->Observe(probe_seconds);
  metrics.match_seconds->Observe(match_seconds);
  if (diag.prefilter_candidates_in > 0 || diag.filter_seconds > 0.0) {
    metrics.prefilter_candidates_in->Increment(
        static_cast<uint64_t>(diag.prefilter_candidates_in));
    metrics.prefilter_pruned->Increment(
        static_cast<uint64_t>(diag.prefilter_pruned));
    metrics.prefilter_candidates_out->Increment(
        static_cast<uint64_t>(diag.prefilter_candidates_out));
    metrics.prefilter_seconds->Observe(diag.filter_seconds);
  }

  if (stats != nullptr) {
    stats->query_regions = static_cast<int>(query_regions.size());
    stats->regions_retrieved = diag.regions_retrieved;
    stats->avg_regions_per_query_region =
        query_regions.empty()
            ? 0.0
            : static_cast<double>(diag.regions_retrieved) /
                  query_regions.size();
    stats->distinct_images = static_cast<int>(candidates.size());
    stats->seconds += timer.ElapsedSeconds();
    stats->probe_seconds = probe_seconds;
    stats->filter_seconds = diag.filter_seconds;
    stats->match_seconds = match_seconds;
    stats->rank_seconds = rank_seconds;
    stats->prefilter_candidates_in = diag.prefilter_candidates_in;
    stats->prefilter_pruned = diag.prefilter_pruned;
    stats->prefilter_candidates_out = diag.prefilter_candidates_out;
    stats->nodes_visited = diag.nodes_visited;
    stats->pages_read = diag.pages_read;
    stats->cache_hits = diag.cache_hits;
    stats->cache_misses = diag.cache_misses;
  }
  return matches;
}

/// Picks the trace for one query: an actual trace only when the caller
/// asked for one AND passed a stats sink to carry the spans back.
QueryTrace* TraceFor(const QueryOptions& options, QueryStats* stats,
                     QueryTrace* storage) {
  return options.collect_trace && stats != nullptr ? storage : nullptr;
}

}  // namespace

Result<std::vector<QueryMatch>> ExecuteQueryWithRegions(
    const WalrusIndex& index, const std::vector<Region>& query_regions,
    double query_area, const QueryOptions& options, QueryStats* stats) {
  QueryTrace storage;
  QueryTrace* trace = TraceFor(options, stats, &storage);
  auto result = RunMatchingPipeline(index, query_regions, query_area,
                                    options, stats, trace);
  if (trace != nullptr) stats->spans = trace->TakeSpans();
  return result;
}

Result<std::vector<QueryMatch>> ExecuteSceneQuery(const WalrusIndex& index,
                                                  const ImageF& query_image,
                                                  const PixelRect& scene,
                                                  const QueryOptions& options,
                                                  QueryStats* stats) {
  QueryTrace storage;
  QueryTrace* trace = TraceFor(options, stats, &storage);
  WallTimer timer;
  WALRUS_ASSIGN_OR_RETURN(
      ExtractedQuery extracted,
      ExtractSceneQueryRegions(query_image, scene, index.params(), trace));
  double extract_seconds = timer.ElapsedSeconds();
  QueryPathMetrics::Get().extract_seconds->Observe(extract_seconds);
  if (stats != nullptr) {
    stats->seconds = extract_seconds;
    stats->extract_seconds = extract_seconds;
  }
  auto result =
      RunMatchingPipeline(index, extracted.regions, extracted.query_area,
                          options, stats, trace);
  if (trace != nullptr) stats->spans = trace->TakeSpans();
  return result;
}

Result<std::vector<std::vector<QueryMatch>>> ExecuteQueryBatch(
    const QueryEngine& engine, const std::vector<ImageF>& queries,
    const QueryOptions& options, int num_threads) {
  std::vector<std::vector<QueryMatch>> results(queries.size());
  if (queries.empty()) return results;
  if (num_threads <= 0) num_threads = ThreadPool::DefaultThreads();
  num_threads = std::min<int>(num_threads, static_cast<int>(queries.size()));

  std::vector<std::unique_ptr<Result<std::vector<QueryMatch>>>> slots(
      queries.size());
  {
    ThreadPool pool(num_threads);
    pool.ParallelFor(static_cast<int>(queries.size()), [&](int i) {
      slots[i] = std::make_unique<Result<std::vector<QueryMatch>>>(
          engine.RunQuery(queries[i], options, nullptr));
    });
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i]->ok()) {
      // Name the failing query: a caller batching hundreds of images needs
      // to know which one to drop or retry, not just that "one" failed.
      return Annotate(slots[i]->status(),
                      "query " + std::to_string(i) + " of " +
                          std::to_string(queries.size()));
    }
    results[i] = std::move(*slots[i]).value();
  }
  return results;
}

Result<std::vector<std::vector<QueryMatch>>> ExecuteQueryBatch(
    const WalrusIndex& index, const std::vector<ImageF>& queries,
    const QueryOptions& options, int num_threads) {
  SingleIndexEngine engine(index);
  return ExecuteQueryBatch(engine, queries, options, num_threads);
}

Result<std::vector<QueryMatch>> ExecuteQuery(const WalrusIndex& index,
                                             const ImageF& query_image,
                                             const QueryOptions& options,
                                             QueryStats* stats) {
  QueryTrace storage;
  QueryTrace* trace = TraceFor(options, stats, &storage);
  WallTimer timer;
  WALRUS_ASSIGN_OR_RETURN(
      ExtractedQuery extracted,
      ExtractQueryRegions(query_image, index.params(), trace));
  double extraction_seconds = timer.ElapsedSeconds();
  QueryPathMetrics::Get().extract_seconds->Observe(extraction_seconds);
  if (stats != nullptr) {
    stats->seconds = extraction_seconds;
    stats->extract_seconds = extraction_seconds;
  }
  auto result =
      RunMatchingPipeline(index, extracted.regions, extracted.query_area,
                          options, stats, trace);
  if (trace != nullptr) stats->spans = trace->TakeSpans();
  return result;
}

}  // namespace walrus
