#ifndef WALRUS_CORE_SIMILARITY_H_
#define WALRUS_CORE_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "core/region.h"

namespace walrus {

/// A matching pair of regions (Definition 4.1): indices into the query and
/// target region vectors.
struct RegionPair {
  int query_index = 0;
  int target_index = 0;
};

/// Definition 4.1 for centroid signatures: Euclidean distance <= epsilon.
bool RegionsMatchCentroid(const float* a, const float* b, int dim,
                          float epsilon);

/// Definition 4.1 for bounding-box signatures: `a` expanded by epsilon
/// overlaps `b`.
bool RegionsMatchBBox(const Rect& a, const Rect& b, float epsilon);

/// Enumerates all matching pairs between two region sets (used by tests and
/// by the pairwise image-similarity API; queries against an index get their
/// pairs from the R*-tree probe instead).
std::vector<RegionPair> FindMatchingPairs(const std::vector<Region>& query,
                                          const std::vector<Region>& target,
                                          float epsilon,
                                          bool use_bounding_box);

/// Which denominator Definition 4.3 uses. The paper (end of section 4)
/// offers variations "depending on the application".
enum class SimilarityNormalization : uint8_t {
  /// (covered_q + covered_t) / (area_q + area_t) -- the paper's default.
  kBothImages = 0,
  /// covered_q / area_q: "simply measure the fraction of the query image Q
  /// covered by matching regions".
  kQueryOnly = 1,
  /// (covered_q + covered_t) / (2 * min(area_q, area_t)): "for images with
  /// different sizes ... twice the area of the smaller image".
  kSmallerImage = 2,
};

/// Outcome of one image-pair match.
struct MatchResult {
  /// Definition 4.3 value in [0, 1].
  double similarity = 0.0;
  /// Pairs contributing to the covered area.
  int pairs_used = 0;
  /// Covered pixel areas on each side.
  double covered_query_area = 0.0;
  double covered_target_area = 0.0;
  /// The pairs that contributed: every input pair for QuickMatch, the
  /// selected one-to-one set for GreedyMatch/ExactMatch.
  std::vector<RegionPair> used_pairs;

  /// Re-derives the similarity under a different normalization (the
  /// covered areas are normalization independent). Values above 1 are
  /// clamped (possible under kSmallerImage when the large image's matched
  /// area exceeds twice the small image's).
  double SimilarityAs(SimilarityNormalization norm, double query_area,
                      double target_area) const;
};

/// Quick matcher (paper section 5.5): unions the bitmaps of every matched
/// region on both sides -- regions may appear in many pairs (the relaxed
/// Definition 4.2). Linear in the number of pairs.
MatchResult QuickMatch(const std::vector<Region>& query,
                       const std::vector<Region>& target,
                       const std::vector<RegionPair>& pairs,
                       double query_area, double target_area);

/// Greedy heuristic for the strict one-to-one similar region pair set:
/// repeatedly picks the admissible pair with the largest marginal covered
/// area (paper section 5.5; the exact problem is NP-hard, Theorem 5.1).
/// O(pairs^2) pair evaluations.
MatchResult GreedyMatch(const std::vector<Region>& query,
                        const std::vector<Region>& target,
                        const std::vector<RegionPair>& pairs,
                        double query_area, double target_area);

/// Exact maximum-covered-area similar region pair set by branch and bound;
/// exponential in pairs.size() (checked <= 24). Test/ablation use only.
MatchResult ExactMatch(const std::vector<Region>& query,
                       const std::vector<Region>& target,
                       const std::vector<RegionPair>& pairs,
                       double query_area, double target_area);

/// End-to-end pairwise similarity of two region sets (find pairs, then run
/// the chosen matcher). `use_greedy` false selects QuickMatch.
MatchResult MatchImages(const std::vector<Region>& query,
                        const std::vector<Region>& target, float epsilon,
                        bool use_bounding_box, bool use_greedy,
                        double query_area, double target_area);

}  // namespace walrus

#endif  // WALRUS_CORE_SIMILARITY_H_
