#ifndef WALRUS_CORE_QUERY_PIPELINE_H_
#define WALRUS_CORE_QUERY_PIPELINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/index.h"
#include "core/query.h"

namespace walrus {

/// The query pipeline decomposed into its three stages (probe, score,
/// rank), exposed so query engines can re-compose them. ExecuteQuery runs
/// probe -> score -> rank against one WalrusIndex; the sharded engine
/// (core/sharded_index.h) runs probe+score per shard in parallel and ranks
/// the merged result. Because every stage is deterministic in its inputs —
/// candidate sets depend only on the indexed data (never on R*-tree layout)
/// and pair lists are canonically ordered — composing the stages per shard
/// yields byte-identical rankings to the monolithic pipeline.

/// One candidate target image produced by the probe stage: every region
/// pair the index probe discovered for it. Pair lists are in canonical
/// (query_index, target_index) order, so downstream tie-breaking (the
/// greedy matcher picks the first pair among equal marginal gains) does not
/// depend on tree traversal order.
struct CandidateImage {
  uint64_t image_id = 0;
  std::vector<RegionPair> pairs;
};

/// Probe-stage work counters (the per-query slice of QueryStats).
struct ProbeDiagnostics {
  /// Region pairs retrieved across all query-region probes.
  int64_t regions_retrieved = 0;
  /// In-memory tree nodes touched (0 for paged indexes).
  int64_t nodes_visited = 0;
  /// Paged-backend IO deltas (0 for in-memory indexes; approximate under
  /// concurrent queries, see QueryStats).
  int64_t pages_read = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// Signature prefilter tier slice (all 0 when the tier did not run):
  /// wall time of the filter passes plus the tier's candidate traffic
  /// (see QueryStats for the field semantics).
  double filter_seconds = 0.0;
  int64_t prefilter_candidates_in = 0;
  int64_t prefilter_pruned = 0;
  int64_t prefilter_candidates_out = 0;
};

/// Stage 0 output: the query decomposed into regions plus the pixel area
/// the similarity denominators use.
struct ExtractedQuery {
  std::vector<Region> regions;
  double query_area = 0.0;
};

/// Stage 0, whole image: region extraction (sliding-window wavelets +
/// BIRCH). `trace`, when non-null, receives an "extract" span with the
/// extractor's child spans.
Result<ExtractedQuery> ExtractQueryRegions(const ImageF& query_image,
                                           const WalrusParams& params,
                                           QueryTrace* trace = nullptr);

/// Stage 0, user-specified scene: extracts only the regions inside `scene`
/// and computes the effective query area (the pixels the scene's windows
/// can actually cover). InvalidArgument when the scene yields no regions.
Result<ExtractedQuery> ExtractSceneQueryRegions(const ImageF& query_image,
                                                const PixelRect& scene,
                                                const WalrusParams& params,
                                                QueryTrace* trace = nullptr);

/// Stage 1, epsilon mode (Definitions 4.1 and 5.4): probes `index` with
/// every query region's signature expanded by options.epsilon (centroid
/// mode post-filters the L-infinity candidates down to true Euclidean
/// matches). With options.signature_prefilter set (and a centroid-mode,
/// non-kNN probe), the post-filter runs as the signature tier instead of
/// inline: raw envelope hits are Hamming-pruned then batch-verified
/// (core/signature_filter.h) -- the accepted set is identical either way.
/// Returns candidates sorted by image id with canonically ordered pair
/// lists. The result is a pure function of the indexed data: independent
/// of tree build path (incremental vs bulk load) and of how images are
/// partitioned across shards. `trace`, when non-null, receives a "filter"
/// child span for the tier.
Result<std::vector<CandidateImage>> ProbeCandidates(
    const WalrusIndex& index, const std::vector<Region>& query_regions,
    const QueryOptions& options, ProbeDiagnostics* diag = nullptr,
    QueryTrace* trace = nullptr);

/// Stage 1, kNN mode: for each query region, the k = options.knn_per_region
/// nearest database regions as (payload, distance) pairs in ascending
/// distance order. Exposed separately from ProbeCandidates because a
/// sharded engine must merge per-shard neighbor lists down to a global
/// top-k per region *before* matching (the union of per-shard top-k is a
/// superset of the global top-k).
Result<std::vector<std::vector<std::pair<uint64_t, double>>>>
ProbeNearestPerRegion(const WalrusIndex& index,
                      const std::vector<Region>& query_regions, int k,
                      ProbeDiagnostics* diag = nullptr);

/// Folds per-region neighbor lists into canonical candidates (sorted by
/// image id, pairs in canonical order). `neighbors[qi]` lists the selected
/// neighbors of query region qi.
std::vector<CandidateImage> CandidatesFromNeighbors(
    const std::vector<std::vector<std::pair<uint64_t, double>>>& neighbors);

/// Stage 2 (section 5.5): scores each candidate image with the configured
/// matcher (applying the refined-matching phase and the tau threshold) and
/// returns the surviving matches, unranked, in candidate order. Every
/// candidate's image must be indexed in `index` — with sharding, score a
/// shard's own candidates against that shard. With
/// options.signature_prefilter set, only the target regions the matcher
/// will read (those named by the candidate's pairs) are materialized from
/// the catalog instead of every region of the image; scores are identical
/// because the matchers never dereference unpaired target regions.
Result<std::vector<QueryMatch>> ScoreCandidates(
    const WalrusIndex& index, const std::vector<Region>& query_regions,
    double query_area, const QueryOptions& options,
    const std::vector<CandidateImage>& candidates);

/// Stage 3: ranks matches by (similarity descending, image id ascending) —
/// a total order, so the result is unique regardless of input order — and
/// truncates to top_k when positive.
void RankMatches(std::vector<QueryMatch>* matches, int top_k);

}  // namespace walrus

#endif  // WALRUS_CORE_QUERY_PIPELINE_H_
