#ifndef WALRUS_CORE_QUERY_ENGINE_H_
#define WALRUS_CORE_QUERY_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/index.h"
#include "core/query.h"
#include "core/region_extractor.h"

namespace walrus {

/// Engine-level counters surfaced by walrusd STATS (shard fan-out and
/// result-cache health). All zero / empty for a single-index engine with no
/// cache.
struct EngineStats {
  /// Number of shards behind this engine (1 for a single index).
  int num_shards = 1;
  /// Regions retrieved by probes against each shard, cumulative since
  /// startup. Size == num_shards for a sharded engine; empty otherwise.
  std::vector<uint64_t> shard_probes;
  /// Result-cache health; all zero when no cache is configured.
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  uint64_t result_cache_entries = 0;
  uint64_t result_cache_capacity = 0;
};

/// Abstract query execution surface: everything the server, the batch entry
/// point, and the benchmarks need from "something that answers WALRUS
/// queries", independent of whether one monolithic WalrusIndex or a sharded
/// fleet of them sits behind it. Implementations must support concurrent
/// RunQuery / RunSceneQuery calls from many threads.
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// Full-image query (paper section 5.1). Semantics and ranking are
  /// identical across implementations: a sharded engine returns
  /// byte-identical results to a single index holding the same images.
  virtual Result<std::vector<QueryMatch>> RunQuery(
      const ImageF& query_image, const QueryOptions& options,
      QueryStats* stats = nullptr) const = 0;

  /// "User-specified scene" query — only `scene` is decomposed into
  /// regions.
  virtual Result<std::vector<QueryMatch>> RunSceneQuery(
      const ImageF& query_image, const PixelRect& scene,
      const QueryOptions& options, QueryStats* stats = nullptr) const = 0;

  virtual size_t ImageCount() const = 0;
  virtual size_t RegionCount() const = 0;
  virtual EngineStats Stats() const = 0;
};

/// Trivial adapter: one WalrusIndex, no cache, no fan-out. Lets the server
/// and batch path treat the monolithic and sharded cases uniformly. Holds a
/// reference — the index must outlive the engine.
class SingleIndexEngine : public QueryEngine {
 public:
  explicit SingleIndexEngine(const WalrusIndex& index) : index_(index) {}

  Result<std::vector<QueryMatch>> RunQuery(
      const ImageF& query_image, const QueryOptions& options,
      QueryStats* stats = nullptr) const override {
    return ExecuteQuery(index_, query_image, options, stats);
  }

  Result<std::vector<QueryMatch>> RunSceneQuery(
      const ImageF& query_image, const PixelRect& scene,
      const QueryOptions& options, QueryStats* stats = nullptr) const override {
    return ExecuteSceneQuery(index_, query_image, scene, options, stats);
  }

  size_t ImageCount() const override { return index_.ImageCount(); }
  size_t RegionCount() const override { return index_.RegionCount(); }
  EngineStats Stats() const override { return EngineStats{}; }

  const WalrusIndex& index() const { return index_; }

 private:
  const WalrusIndex& index_;
};

}  // namespace walrus

#endif  // WALRUS_CORE_QUERY_ENGINE_H_
