#ifndef WALRUS_CORE_INGEST_ENGINE_H_
#define WALRUS_CORE_INGEST_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "image/image.h"

namespace walrus {

/// Ingest-side counters surfaced by walrusd STATS next to EngineStats
/// (DESIGN.md section 14). WAL watermarks are absolute; the rest are
/// cumulative since the engine opened its log.
struct IngestStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  /// Delta-into-base merges completed.
  uint64_t merges = 0;
  /// Images currently living in the in-memory delta index.
  uint64_t delta_images = 0;
  /// Base images currently masked by a tombstone.
  uint64_t tombstones = 0;
  /// WAL records appended since open (inserts + deletes, pre-merge).
  uint64_t wal_records = 0;
  /// WAL bytes appended since open.
  uint64_t wal_bytes = 0;
  /// fsync batches the log has completed.
  uint64_t wal_syncs = 0;
  /// Highest LSN guaranteed durable.
  uint64_t wal_synced_lsn = 0;
  /// Current WAL file size in bytes.
  uint64_t wal_file_bytes = 0;
};

/// Abstract mutation surface: what the server needs from "something that
/// accepts online inserts and deletes", independent of how durability is
/// implemented. The live engine (wal/live_index.h) implements this next to
/// QueryEngine; a server without one answers mutation opcodes with
/// Unimplemented. Implementations must support concurrent calls from many
/// threads, concurrently with queries.
class IngestEngine {
 public:
  virtual ~IngestEngine() = default;

  /// Extracts regions from `image` and indexes them under `image_id`,
  /// durably (the call returns OK only once the mutation would survive a
  /// crash). AlreadyExists when the id is live in the engine.
  [[nodiscard]] virtual Status InsertImage(uint64_t image_id,
                                           const std::string& name,
                                           const ImageF& image) = 0;

  /// Durably removes the image with `image_id` from query results.
  /// NotFound when the id is not live.
  [[nodiscard]] virtual Status DeleteImage(uint64_t image_id) = 0;

  virtual IngestStats IngestStatsSnapshot() const = 0;
};

}  // namespace walrus

#endif  // WALRUS_CORE_INGEST_ENGINE_H_
