#include "core/index.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace walrus {

uint64_t EncodeRegionPayload(uint64_t image_id, uint32_t region_id) {
  WALRUS_CHECK_LT(image_id, uint64_t{1} << 48);
  WALRUS_CHECK_LT(region_id, 1u << 16);
  return (image_id << 16) | region_id;
}

void DecodeRegionPayload(uint64_t payload, uint64_t* image_id,
                         uint32_t* region_id) {
  *image_id = payload >> 16;
  *region_id = static_cast<uint32_t>(payload & 0xffff);
}

WalrusIndex::WalrusIndex(WalrusParams params)
    : params_(params), tree_(params.SignatureDim()) {
  WALRUS_CHECK(params.Validate().ok()) << params.Validate();
}

Status WalrusIndex::AddImage(uint64_t image_id, const std::string& name,
                             const ImageF& image, ExtractionStats* stats) {
  if (catalog_.FindImage(image_id) != nullptr) {
    return Status::AlreadyExists("image id " + std::to_string(image_id));
  }
  WALRUS_ASSIGN_OR_RETURN(
      ImageRecord record,
      ExtractImageRecord(params_, image_id, name, image, stats));
  return AddImageRecord(std::move(record));
}

Result<ImageRecord> WalrusIndex::ExtractImageRecord(const WalrusParams& params,
                                                    uint64_t image_id,
                                                    const std::string& name,
                                                    const ImageF& image,
                                                    ExtractionStats* stats) {
  if (image_id >= (uint64_t{1} << 48)) {
    return Status::InvalidArgument(
        "image id " + std::to_string(image_id) +
        " does not fit the 48-bit region payload");
  }
  WALRUS_ASSIGN_OR_RETURN(std::vector<Region> regions,
                          ExtractRegions(image, params, stats));
  ImageRecord record;
  record.image_id = image_id;
  record.name = name;
  record.width = static_cast<uint32_t>(image.width());
  record.height = static_cast<uint32_t>(image.height());
  record.regions.reserve(regions.size());
  for (const Region& region : regions) {
    record.regions.push_back(region.ToRecord());
  }
  return record;
}

Status WalrusIndex::AddImageRecord(ImageRecord record) {
  if (is_paged()) {
    return Status::Unimplemented("paged index is read-only");
  }
  if (catalog_.FindImage(record.image_id) != nullptr) {
    return Status::AlreadyExists("image id " +
                                 std::to_string(record.image_id));
  }
  if (record.image_id >= (uint64_t{1} << 48)) {
    return Status::InvalidArgument(
        "image id " + std::to_string(record.image_id) +
        " does not fit the 48-bit region payload");
  }
  bool use_bbox = params_.signature_kind == RegionSignatureKind::kBoundingBox;
  for (const RegionRecord& region : record.regions) {
    if (region.region_id >= (1u << 16)) {
      return Status::InvalidArgument(
          "region id " + std::to_string(region.region_id) +
          " does not fit the 16-bit region payload");
    }
    Rect rect = use_bbox ? Rect::Bounds(region.bbox_lo, region.bbox_hi)
                         : Rect::Point(region.centroid);
    tree_.Insert(rect, EncodeRegionPayload(record.image_id, region.region_id));
  }
  const uint64_t image_id = record.image_id;
  WALRUS_RETURN_IF_ERROR(catalog_.AddImage(std::move(record)));
  signatures_.AddImage(*catalog_.FindImage(image_id));
  if (DeepChecksEnabled()) return ValidateConsistency();
  return Status::OK();
}

Status WalrusIndex::AddImages(std::vector<PendingImage> images,
                              int num_threads) {
  if (images.empty()) return Status::OK();
  // Validate ids up front so the batch can be atomic.
  std::unordered_set<uint64_t> seen;
  for (const PendingImage& pending : images) {
    if (catalog_.FindImage(pending.image_id) != nullptr ||
        !seen.insert(pending.image_id).second) {
      return Status::AlreadyExists("image id " +
                                   std::to_string(pending.image_id));
    }
  }

  if (num_threads <= 0) num_threads = ThreadPool::DefaultThreads();
  num_threads = std::min<int>(num_threads, static_cast<int>(images.size()));

  std::vector<std::unique_ptr<Result<std::vector<Region>>>> extracted(
      images.size());
  {
    ThreadPool pool(num_threads);
    pool.ParallelFor(static_cast<int>(images.size()), [&](int i) {
      extracted[i] = std::make_unique<Result<std::vector<Region>>>(
          ExtractRegions(images[i].image, params_));
    });
  }
  for (const auto& result : extracted) {
    if (!result->ok()) return result->status();
  }

  // Serial insertion (R*-tree and catalog are not thread-safe for writes).
  // Into an empty index, the whole batch is STR-bulk-loaded instead of
  // inserted one entry at a time: faster and tighter nodes.
  bool use_bbox = params_.signature_kind == RegionSignatureKind::kBoundingBox;
  bool bulk = tree_.size() == 0;
  std::vector<std::pair<Rect, uint64_t>> bulk_entries;
  for (size_t i = 0; i < images.size(); ++i) {
    const PendingImage& pending = images[i];
    const std::vector<Region>& regions = extracted[i]->value();
    ImageRecord record;
    record.image_id = pending.image_id;
    record.name = pending.name;
    record.width = static_cast<uint32_t>(pending.image.width());
    record.height = static_cast<uint32_t>(pending.image.height());
    record.regions.reserve(regions.size());
    for (const Region& region : regions) {
      uint64_t payload =
          EncodeRegionPayload(pending.image_id, region.region_id);
      if (bulk) {
        bulk_entries.emplace_back(region.IndexRect(use_bbox), payload);
      } else {
        tree_.Insert(region.IndexRect(use_bbox), payload);
      }
      record.regions.push_back(region.ToRecord());
    }
    WALRUS_RETURN_IF_ERROR(catalog_.AddImage(std::move(record)));
    signatures_.AddImage(*catalog_.FindImage(pending.image_id));
  }
  if (bulk) {
    tree_ = RStarTree::BulkLoad(params_.SignatureDim(),
                                std::move(bulk_entries));
  }
  if (DeepChecksEnabled()) return ValidateConsistency();
  return Status::OK();
}

Status WalrusIndex::RemoveImage(uint64_t image_id) {
  const ImageRecord* record = catalog_.FindImage(image_id);
  if (record == nullptr) {
    return Status::NotFound("image id " + std::to_string(image_id));
  }
  int64_t expected = static_cast<int64_t>(record->regions.size());
  int64_t removed = tree_.DeleteIf([image_id](uint64_t payload) {
    uint64_t payload_image;
    uint32_t region_id;
    DecodeRegionPayload(payload, &payload_image, &region_id);
    return payload_image == image_id;
  });
  if (removed != expected) {
    return Status::Internal("index: removed " + std::to_string(removed) +
                            " tree entries, catalog had " +
                            std::to_string(expected));
  }
  WALRUS_RETURN_IF_ERROR(catalog_.RemoveImage(image_id));
  signatures_.RemoveImage(image_id);
  if (DeepChecksEnabled()) return ValidateConsistency();
  return Status::OK();
}

Result<WalrusIndex> WalrusIndex::FromRecords(
    WalrusParams params, std::vector<ImageRecord> records) {
  WalrusIndex index(std::move(params));
  for (ImageRecord& record : records) {
    WALRUS_RETURN_IF_ERROR(index.catalog_.AddImage(std::move(record)));
  }
  index.tree_ = RStarTree::BulkLoad(index.params_.SignatureDim(),
                                    index.CatalogEntries());
  index.signatures_.Rebuild(index.catalog_);
  if (DeepChecksEnabled()) {
    WALRUS_RETURN_IF_ERROR(index.ValidateConsistency());
  }
  return index;
}

Result<std::vector<Region>> WalrusIndex::ImageRegions(
    uint64_t image_id) const {
  const ImageRecord* record = catalog_.FindImage(image_id);
  if (record == nullptr) {
    return Status::NotFound("image id " + std::to_string(image_id));
  }
  std::vector<Region> regions;
  regions.reserve(record->regions.size());
  for (const RegionRecord& r : record->regions) {
    regions.push_back(Region::FromRecord(r));
  }
  return regions;
}

Result<double> WalrusIndex::ImageArea(uint64_t image_id) const {
  const ImageRecord* record = catalog_.FindImage(image_id);
  if (record == nullptr) {
    return Status::NotFound("image id " + std::to_string(image_id));
  }
  return static_cast<double>(record->width) * record->height;
}

void SerializeParams(const WalrusParams& params, BinaryWriter* writer) {
  writer->PutU32(0x57505253);  // "WPRS"
  writer->PutU8(static_cast<uint8_t>(params.color_space));
  writer->PutU32(static_cast<uint32_t>(params.signature_size));
  writer->PutU32(static_cast<uint32_t>(params.min_window));
  writer->PutU32(static_cast<uint32_t>(params.max_window));
  writer->PutU32(static_cast<uint32_t>(params.slide_step));
  writer->PutDouble(params.cluster_epsilon);
  writer->PutU32(static_cast<uint32_t>(params.bitmap_side));
  writer->PutU8(static_cast<uint8_t>(params.signature_kind));
  writer->PutU32(static_cast<uint32_t>(params.birch_branching));
  writer->PutU32(static_cast<uint32_t>(params.birch_leaf_entries));
  writer->PutU32(static_cast<uint32_t>(params.min_cluster_windows));
  writer->PutU32(static_cast<uint32_t>(params.refined_signature_size));
  writer->PutU8(static_cast<uint8_t>(params.clusterer));
  writer->PutU32(static_cast<uint32_t>(params.kmeans_k));
}

Result<WalrusParams> DeserializeParams(BinaryReader* reader) {
  WALRUS_ASSIGN_OR_RETURN(uint32_t magic, reader->GetU32());
  if (magic != 0x57505253) return Status::Corruption("params: bad magic");
  WalrusParams p;
  WALRUS_ASSIGN_OR_RETURN(uint8_t cs, reader->GetU8());
  p.color_space = static_cast<ColorSpace>(cs);
  WALRUS_ASSIGN_OR_RETURN(uint32_t v, reader->GetU32());
  p.signature_size = static_cast<int>(v);
  WALRUS_ASSIGN_OR_RETURN(v, reader->GetU32());
  p.min_window = static_cast<int>(v);
  WALRUS_ASSIGN_OR_RETURN(v, reader->GetU32());
  p.max_window = static_cast<int>(v);
  WALRUS_ASSIGN_OR_RETURN(v, reader->GetU32());
  p.slide_step = static_cast<int>(v);
  WALRUS_ASSIGN_OR_RETURN(p.cluster_epsilon, reader->GetDouble());
  WALRUS_ASSIGN_OR_RETURN(v, reader->GetU32());
  p.bitmap_side = static_cast<int>(v);
  WALRUS_ASSIGN_OR_RETURN(uint8_t kind, reader->GetU8());
  p.signature_kind = static_cast<RegionSignatureKind>(kind);
  WALRUS_ASSIGN_OR_RETURN(v, reader->GetU32());
  p.birch_branching = static_cast<int>(v);
  WALRUS_ASSIGN_OR_RETURN(v, reader->GetU32());
  p.birch_leaf_entries = static_cast<int>(v);
  WALRUS_ASSIGN_OR_RETURN(v, reader->GetU32());
  p.min_cluster_windows = static_cast<int>(v);
  WALRUS_ASSIGN_OR_RETURN(v, reader->GetU32());
  p.refined_signature_size = static_cast<int>(v);
  WALRUS_ASSIGN_OR_RETURN(uint8_t clusterer, reader->GetU8());
  p.clusterer = static_cast<ClustererKind>(clusterer);
  WALRUS_ASSIGN_OR_RETURN(v, reader->GetU32());
  p.kmeans_k = static_cast<int>(v);
  WALRUS_RETURN_IF_ERROR(p.Validate());
  return p;
}

Status WalrusIndex::ProbeRange(
    const Rect& query,
    const std::function<bool(const Rect&, uint64_t)>& visitor) const {
  if (disk_tree_.has_value()) {
    return disk_tree_->RangeSearchVisit(query, visitor);
  }
  tree_.RangeSearchVisit(query, visitor);
  return Status::OK();
}

Status WalrusIndex::ProbeRangeBatch(
    const std::vector<Rect>& probes,
    const std::function<bool(int, const Rect&, uint64_t)>& visitor) const {
  if (disk_tree_.has_value()) {
    return disk_tree_->RangeQueryBatch(probes, visitor);
  }
  tree_.RangeQueryBatch(probes, visitor);
  return Status::OK();
}

Result<std::vector<std::pair<uint64_t, double>>> WalrusIndex::ProbeNearest(
    const std::vector<float>& point, int k) const {
  if (disk_tree_.has_value()) {
    return disk_tree_->NearestNeighbors(point, k);
  }
  return tree_.NearestNeighbors(point, k);
}

std::vector<std::pair<Rect, uint64_t>> WalrusIndex::CatalogEntries() const {
  std::vector<std::pair<Rect, uint64_t>> entries;
  bool use_bbox = params_.signature_kind == RegionSignatureKind::kBoundingBox;
  for (const ImageRecord& record : catalog_.images()) {
    for (const RegionRecord& region : record.regions) {
      Rect rect = use_bbox ? Rect::Bounds(region.bbox_lo, region.bbox_hi)
                           : Rect::Point(region.centroid);
      entries.emplace_back(
          std::move(rect),
          EncodeRegionPayload(record.image_id, region.region_id));
    }
  }
  return entries;
}

Status WalrusIndex::ValidateConsistency() const {
  WALRUS_RETURN_IF_ERROR(catalog_.Validate());

  // The signature tier must shadow the catalog exactly: every region's
  // stored thermometer words (persisted and resident) must equal the words
  // recomputed from its centroid -- the admissibility proof assumes the
  // signature is a pure function of the centroid the exact test reads.
  for (const ImageRecord& record : catalog_.images()) {
    for (const RegionRecord& region : record.regions) {
      const std::vector<uint64_t> expected_sig =
          ComputeSignature(region.centroid);
      if (!region.signature.empty() && region.signature != expected_sig) {
        return Status::Internal(
            "index: persisted signature of image " +
            std::to_string(record.image_id) + " region " +
            std::to_string(region.region_id) +
            " disagrees with its centroid quantization");
      }
      const uint64_t* row =
          signatures_.SignatureRow(record.image_id, region.region_id);
      if (row == nullptr ||
          !std::equal(expected_sig.begin(), expected_sig.end(), row)) {
        return Status::Internal(
            "index: signature store row of image " +
            std::to_string(record.image_id) + " region " +
            std::to_string(region.region_id) +
            " is missing or disagrees with the catalog");
      }
    }
  }

  // Every catalog region, keyed by its packed payload. Pointers into
  // `expected` stay valid: the vector is not resized past this point.
  std::vector<std::pair<Rect, uint64_t>> expected = CatalogEntries();
  std::unordered_map<uint64_t, const Rect*> by_payload;
  by_payload.reserve(expected.size());
  for (const auto& [rect, payload] : expected) {
    if (!by_payload.emplace(payload, &rect).second) {
      return Status::Internal("index: duplicate region payload " +
                              std::to_string(payload) + " in catalog");
    }
  }

  // Sweep the spatial backend and tick entries off against the catalog;
  // erasing as we match also catches duplicate tree entries.
  Status mismatch = Status::OK();
  auto visitor = [&](const Rect& rect, uint64_t payload) {
    auto it = by_payload.find(payload);
    if (it == by_payload.end()) {
      mismatch = Status::Internal("index: tree entry with payload " +
                                  std::to_string(payload) +
                                  " has no catalog region (or is duplicated)");
      return false;
    }
    if (!(rect == *it->second)) {
      mismatch = Status::Internal(
          "index: tree rect differs from catalog signature for payload " +
          std::to_string(payload));
      return false;
    }
    by_payload.erase(it);
    return true;
  };
  int dim = params_.SignatureDim();
  Rect everything =
      Rect::Bounds(std::vector<float>(dim, std::numeric_limits<float>::lowest()),
                   std::vector<float>(dim, std::numeric_limits<float>::max()));
  if (disk_tree_.has_value()) {
    WALRUS_RETURN_IF_ERROR(disk_tree_->Validate());
    if (disk_tree_->size() != static_cast<int64_t>(expected.size())) {
      return Status::Internal(
          "index: page tree holds " + std::to_string(disk_tree_->size()) +
          " entries, catalog has " + std::to_string(expected.size()) +
          " regions");
    }
    WALRUS_RETURN_IF_ERROR(disk_tree_->RangeSearchVisit(everything, visitor));
  } else {
    WALRUS_RETURN_IF_ERROR(tree_.Validate());
    if (tree_.size() != static_cast<int64_t>(expected.size())) {
      return Status::Internal(
          "index: tree holds " + std::to_string(tree_.size()) +
          " entries, catalog has " + std::to_string(expected.size()) +
          " regions");
    }
    tree_.RangeSearchVisit(everything, visitor);
  }
  WALRUS_RETURN_IF_ERROR(mismatch);
  if (!by_payload.empty()) {
    return Status::Internal("index: " + std::to_string(by_payload.size()) +
                            " catalog regions missing from the tree");
  }
  return Status::OK();
}

Status WalrusIndex::SavePaged(const std::string& path_prefix) const {
  WALRUS_RETURN_IF_ERROR(catalog_.SaveToFile(path_prefix + ".catalog"));
  BinaryWriter writer;
  SerializeParams(params_, &writer);
  WALRUS_RETURN_IF_ERROR(
      WriteFileBytes(path_prefix + ".pmeta", writer.buffer()));
  WALRUS_ASSIGN_OR_RETURN(
      DiskRStarTree tree,
      DiskRStarTree::Build(path_prefix + ".ptree", params_.SignatureDim(),
                           CatalogEntries()));
  (void)tree;
  return Status::OK();
}

Result<WalrusIndex> WalrusIndex::OpenPaged(const std::string& path_prefix) {
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                          ReadFileBytes(path_prefix + ".pmeta"));
  BinaryReader reader(bytes);
  WALRUS_ASSIGN_OR_RETURN(WalrusParams params, DeserializeParams(&reader));
  WALRUS_ASSIGN_OR_RETURN(DiskRStarTree tree,
                          DiskRStarTree::Open(path_prefix + ".ptree"));
  if (tree.dim() != params.SignatureDim()) {
    return Status::Corruption("paged index: tree/params dimension mismatch");
  }
  WALRUS_ASSIGN_OR_RETURN(Catalog catalog,
                          Catalog::LoadFromFile(path_prefix + ".catalog"));
  WalrusIndex index(params);
  index.catalog_ = std::move(catalog);
  index.signatures_.Rebuild(index.catalog_);
  index.disk_tree_.emplace(std::move(tree));
  return index;
}

Status WalrusIndex::Save(const std::string& path_prefix) const {
  WALRUS_RETURN_IF_ERROR(catalog_.SaveToFile(path_prefix + ".catalog"));
  BinaryWriter writer;
  SerializeParams(params_, &writer);
  tree_.Serialize(&writer);
  return WriteFileBytes(path_prefix + ".index", writer.buffer());
}

Result<WalrusIndex> WalrusIndex::Open(const std::string& path_prefix) {
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                          ReadFileBytes(path_prefix + ".index"));
  BinaryReader reader(bytes);
  WALRUS_ASSIGN_OR_RETURN(WalrusParams params, DeserializeParams(&reader));
  WALRUS_ASSIGN_OR_RETURN(RStarTree tree, RStarTree::Deserialize(&reader));
  if (tree.dim() != params.SignatureDim()) {
    return Status::Corruption("index: tree/params dimension mismatch");
  }
  WALRUS_ASSIGN_OR_RETURN(Catalog catalog,
                          Catalog::LoadFromFile(path_prefix + ".catalog"));
  WalrusIndex index(params);
  index.tree_ = std::move(tree);
  index.catalog_ = std::move(catalog);
  index.signatures_.Rebuild(index.catalog_);
  return index;
}

}  // namespace walrus
