#ifndef WALRUS_CORE_SIGNATURE_H_
#define WALRUS_CORE_SIGNATURE_H_

#include <vector>

#include "core/params.h"
#include "image/image.h"

namespace walrus {

/// One sliding window and its multi-channel wavelet signature location.
struct WindowPlacement {
  int x = 0;
  int y = 0;
  int size = 0;
};

/// All sliding-window signatures of one image: windows of every size in
/// [min_window, max_window], each with a Channels()*s*s signature built from
/// the normalized s x s lowest-frequency band per channel (paper section
/// 5.1, "Generating Signatures for Sliding Windows").
struct WindowSignatureSet {
  int dim = 0;
  std::vector<WindowPlacement> windows;
  /// Flat row-major signatures: windows.size() * dim floats.
  std::vector<float> signatures;

  int Count() const { return static_cast<int>(windows.size()); }
  const float* SignatureAt(int i) const {
    return signatures.data() + static_cast<size_t>(i) * dim;
  }
};

/// Normalizes a raw s x s lowest-frequency block in place (2-D rule: detail
/// quadrant of side m divided by m) and appends it to `out`.
void AppendNormalizedBlock(const float* raw_block, int s,
                           std::vector<float>* out);

/// Computes the window signature set of `image` (any color space; it is
/// converted to params.color_space first). Uses the dynamic-programming
/// sliding-window algorithm per channel. Images smaller than max_window in
/// either dimension only produce the window sizes that fit; an error is
/// returned when even min_window does not fit.
Result<WindowSignatureSet> ComputeWindowSignatures(const ImageF& image,
                                                   const WalrusParams& params);

}  // namespace walrus

#endif  // WALRUS_CORE_SIGNATURE_H_
