#include "core/signature_filter.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/simd.h"
#include "core/index.h"

namespace walrus {

uint64_t SignatureWord(float x) {
  const double level_real =
      std::floor((static_cast<double>(x) - kSignatureQMin) / kSignatureDelta);
  const int level = static_cast<int>(std::clamp(
      level_real, 0.0, static_cast<double>(kSignatureLevels - 1)));
  return level == 0 ? 0 : (~uint64_t{0} >> (64 - level));
}

void ComputeSignature(const float* centroid, int dim, uint64_t* out) {
  for (int i = 0; i < dim; ++i) out[i] = SignatureWord(centroid[i]);
}

std::vector<uint64_t> ComputeSignature(const std::vector<float>& centroid) {
  std::vector<uint64_t> words(centroid.size());
  ComputeSignature(centroid.data(), static_cast<int>(centroid.size()),
                   words.data());
  return words;
}

uint32_t SignaturePruneThreshold(double eps2) {
  // Smallest integer whose lower bound delta^2 * lb_int strictly exceeds
  // eps2, nudged up by a relative margin so the bound stays conservative
  // against its own rounding. delta = 5 * 2^-8 keeps delta^2 exact.
  const double scaled =
      eps2 * (1.0 + 1e-9) / (kSignatureDelta * kSignatureDelta);
  return static_cast<uint32_t>(std::floor(scaled)) + 1;
}

void SignatureStore::Clear() {
  dim_ = 0;
  words_.clear();
  centroids_.clear();
  direct_.clear();
  direct_live_ = 0;
  by_id_.clear();
}

int64_t SignatureStore::FindBase(uint64_t image_id) const {
  if (image_id < kDirectLimit) {
    return image_id < direct_.size() ? direct_[image_id] : -1;
  }
  const auto it = by_id_.find(image_id);
  return it == by_id_.end() ? -1 : it->second;
}

void SignatureStore::AddImage(const ImageRecord& record) {
  if (dim_ == 0 && !record.regions.empty()) {
    dim_ = static_cast<int>(record.regions[0].centroid.size());
    WALRUS_CHECK(dim_ > 0);
  }
  const size_t n = record.regions.size();
  const int64_t base =
      dim_ > 0 ? static_cast<int64_t>(words_.size() / dim_) : 0;
  words_.resize((base + n) * static_cast<size_t>(dim_));
  centroids_.resize((base + n) * static_cast<size_t>(dim_));
  for (const RegionRecord& region : record.regions) {
    WALRUS_CHECK(region.region_id < n);  // dense region ids
    WALRUS_CHECK_EQ(static_cast<int>(region.centroid.size()), dim_);
    const size_t slot = static_cast<size_t>(base) + region.region_id;
    uint64_t* words = &words_[slot * dim_];
    if (!region.signature.empty()) {
      WALRUS_CHECK_EQ(static_cast<int>(region.signature.size()), dim_);
      std::copy(region.signature.begin(), region.signature.end(), words);
    } else {
      ComputeSignature(region.centroid.data(), dim_, words);
    }
    std::copy(region.centroid.begin(), region.centroid.end(),
              &centroids_[slot * dim_]);
  }
  if (record.image_id < kDirectLimit) {
    if (record.image_id >= direct_.size()) {
      direct_.resize(record.image_id + 1, -1);
    }
    WALRUS_CHECK(direct_[record.image_id] < 0);
    direct_[record.image_id] = base;
    ++direct_live_;
  } else {
    WALRUS_CHECK(by_id_.emplace(record.image_id, base).second);
  }
}

void SignatureStore::RemoveImage(uint64_t image_id) {
  if (image_id < kDirectLimit) {
    if (image_id < direct_.size() && direct_[image_id] >= 0) {
      direct_[image_id] = -1;
      --direct_live_;
    }
    return;
  }
  by_id_.erase(image_id);
}

void SignatureStore::Rebuild(const Catalog& catalog) {
  Clear();
  for (const ImageRecord& record : catalog.images()) AddImage(record);
}

const uint64_t* SignatureStore::SignatureRow(uint64_t image_id,
                                             uint32_t region_id) const {
  const int64_t base = FindBase(image_id);
  if (base < 0) return nullptr;
  return &words_[(static_cast<size_t>(base) + region_id) * dim_];
}

size_t SignatureStore::FilterCandidates(
    const std::vector<float>& query_centroid, double eps2,
    std::vector<uint64_t>* payloads, SignatureFilterScratch* scratch,
    SignatureFilterCounters* counters) const {
  const size_t n = payloads->size();
  counters->candidates_in += static_cast<int64_t>(n);
  if (n == 0) return 0;
  const int dim = dim_;
  WALRUS_CHECK(dim > 0);
  WALRUS_CHECK_EQ(static_cast<int>(query_centroid.size()), dim);
  const simd::KernelTable& kern = simd::Active();

  scratch->query_words.resize(dim);
  ComputeSignature(query_centroid.data(), dim, scratch->query_words.data());

  // Gather the candidates' signature rows into SoA word planes.
  scratch->slots.resize(n);
  scratch->packed.Reset(static_cast<int>(n), dim);
  for (size_t i = 0; i < n; ++i) {
    uint64_t image_id;
    uint32_t region_id;
    DecodeRegionPayload((*payloads)[i], &image_id, &region_id);
    const int64_t base = FindBase(image_id);
    WALRUS_CHECK(base >= 0);  // the store shadows the catalog exactly
    const uint32_t slot = static_cast<uint32_t>(base) + region_id;
    scratch->slots[i] = slot;
    scratch->packed.SetRow(static_cast<int>(i),
                           &words_[static_cast<size_t>(slot) * dim]);
  }

  // Tier 1: admissible Hamming prune. Surviving lb < prune_min candidates
  // are NOT accepted yet -- only proven-far ones are dropped.
  scratch->lb.resize(n);
  kern.batch_signature_lb(scratch->packed.planes(), scratch->packed.stride(),
                          dim, static_cast<int>(n),
                          scratch->query_words.data(), scratch->lb.data());
  const uint32_t prune_min = SignaturePruneThreshold(eps2);
  size_t survivors = 0;
  for (size_t i = 0; i < n; ++i) {
    if (scratch->lb[i] < prune_min) {
      scratch->slots[survivors] = scratch->slots[i];
      (*payloads)[survivors] = (*payloads)[i];
      ++survivors;
    }
  }
  counters->hamming_pruned += static_cast<int64_t>(n - survivors);

  // Tier 2: exact verification of the survivors, batched over store-row
  // centroids (bitwise equal to the tree rects the inline test reads).
  scratch->centroid_soa.resize(survivors * static_cast<size_t>(dim));
  for (size_t i = 0; i < survivors; ++i) {
    const float* row =
        &centroids_[static_cast<size_t>(scratch->slots[i]) * dim];
    for (int k = 0; k < dim; ++k) {
      scratch->centroid_soa[static_cast<size_t>(k) * survivors + i] = row[k];
    }
  }
  scratch->d2.resize(survivors);
  if (survivors > 0) {
    kern.batch_squared_l2(scratch->centroid_soa.data(),
                          static_cast<int>(survivors), dim,
                          static_cast<int>(survivors), query_centroid.data(),
                          scratch->d2.data());
  }
  size_t out = 0;
  for (size_t i = 0; i < survivors; ++i) {
    if (!(scratch->d2[i] > eps2)) (*payloads)[out++] = (*payloads)[i];
  }
  payloads->resize(out);
  counters->verified_out += static_cast<int64_t>(out);
  return out;
}

}  // namespace walrus
