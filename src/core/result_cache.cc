#include "core/result_cache.h"

#include <cstring>
#include <type_traits>

namespace walrus {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t hash, const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

template <typename T>
uint64_t FnvMixValue(uint64_t hash, const T& value) {
  static_assert(std::is_trivially_copyable<T>::value,
                "hash raw bytes of trivial types only");
  return FnvMix(hash, &value, sizeof(value));
}

uint64_t DigestImage(uint64_t hash, const ImageF& image) {
  hash = FnvMixValue(hash, image.width());
  hash = FnvMixValue(hash, image.height());
  hash = FnvMixValue(hash, image.channels());
  hash = FnvMixValue(hash, image.color_space());
  for (int c = 0; c < image.channels(); ++c) {
    const std::vector<float>& plane = image.Plane(c);
    hash = FnvMix(hash, plane.data(), plane.size() * sizeof(float));
  }
  return hash;
}

/// Canonical options encoding: every field that changes the ranking, in
/// declaration order. collect_trace is deliberately excluded — the cached
/// ranking is identical, and callers that want spans bypass the cache (a
/// cached entry has no pipeline to trace). collect_pairs IS included:
/// whether QueryMatch::pairs is populated is part of the cached value.
uint64_t DigestOptions(uint64_t hash, const QueryOptions& options) {
  hash = FnvMixValue(hash, options.epsilon);
  hash = FnvMixValue(hash, options.tau);
  hash = FnvMixValue(hash, options.matcher);
  hash = FnvMixValue(hash, options.normalization);
  hash = FnvMixValue(hash, options.knn_per_region);
  hash = FnvMixValue(hash, options.use_refinement);
  hash = FnvMixValue(hash, options.refined_epsilon);
  hash = FnvMixValue(hash, options.top_k);
  hash = FnvMixValue(hash, options.collect_pairs);
  return hash;
}

}  // namespace

ResultCache::ResultCache(size_t capacity)
    : capacity_(capacity),
      metric_hits_(
          MetricsRegistry::Global().GetCounter("walrus.result_cache.hits")),
      metric_misses_(
          MetricsRegistry::Global().GetCounter("walrus.result_cache.misses")),
      metric_evictions_(MetricsRegistry::Global().GetCounter(
          "walrus.result_cache.evictions")),
      metric_invalidations_(MetricsRegistry::Global().GetCounter(
          "walrus.result_cache.invalidations")),
      metric_entries_(
          MetricsRegistry::Global().GetGauge("walrus.result_cache.entries")) {}

ResultCache::Key ResultCache::MakeKey(const ImageF& image,
                                      const QueryOptions& options) {
  uint64_t hash = kFnvOffset;
  hash = FnvMixValue(hash, uint8_t{0});  // domain tag: whole-image query
  hash = DigestImage(hash, image);
  hash = DigestOptions(hash, options);
  return Key{hash};
}

ResultCache::Key ResultCache::MakeKey(const ImageF& image,
                                      const PixelRect& scene,
                                      const QueryOptions& options) {
  uint64_t hash = kFnvOffset;
  hash = FnvMixValue(hash, uint8_t{1});  // domain tag: scene query
  hash = DigestImage(hash, image);
  hash = FnvMixValue(hash, scene.x);
  hash = FnvMixValue(hash, scene.y);
  hash = FnvMixValue(hash, scene.width);
  hash = FnvMixValue(hash, scene.height);
  hash = DigestOptions(hash, options);
  return Key{hash};
}

std::optional<std::vector<QueryMatch>> ResultCache::Lookup(const Key& key) {
  MutexLock lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    metric_misses_->Increment();
    return std::nullopt;
  }
  ++hits_;
  metric_hits_->Increment();
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  return it->second->matches;
}

void ResultCache::Insert(const Key& key, std::vector<QueryMatch> matches) {
  if (capacity_ == 0) return;
  MutexLock lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh in place (a racing miss on the same key already inserted).
    it->second->matches = std::move(matches);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) EvictLRULocked();
  lru_.push_front(Entry{key, std::move(matches)});
  map_[key] = lru_.begin();
  metric_entries_->Set(static_cast<int64_t>(lru_.size()));
}

void ResultCache::EvictLRULocked() {
  map_.erase(lru_.back().key);
  lru_.pop_back();
  ++evictions_;
  metric_evictions_->Increment();
}

void ResultCache::Invalidate() {
  MutexLock lock(mu_);
  map_.clear();
  lru_.clear();
  ++invalidations_;
  metric_invalidations_->Increment();
  metric_entries_->Set(0);
}

size_t ResultCache::size() const {
  MutexLock lock(mu_);
  return lru_.size();
}

uint64_t ResultCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

uint64_t ResultCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

uint64_t ResultCache::evictions() const {
  MutexLock lock(mu_);
  return evictions_;
}

uint64_t ResultCache::invalidations() const {
  MutexLock lock(mu_);
  return invalidations_;
}

}  // namespace walrus
