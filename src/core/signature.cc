#include "core/signature.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/status.h"
#include "image/color.h"
#include "wavelet/sliding_window.h"

#include "common/check.h"

namespace walrus {

void AppendNormalizedBlock(const float* raw_block, int s,
                           std::vector<float>* out) {
  WALRUS_DCHECK(IsPowerOfTwo(static_cast<uint32_t>(s)));
  size_t base = out->size();
  out->insert(out->end(), raw_block, raw_block + static_cast<size_t>(s) * s);
  // Detail quadrants of side m are scaled by 1/m (see
  // HaarNormalizeNonStandard); the average (0,0) is untouched.
  for (int m = 1; m < s; m *= 2) {
    float inv = 1.0f / static_cast<float>(m);
    for (int j = 0; j < m; ++j) {
      float* row_top = out->data() + base + static_cast<size_t>(j) * s;
      float* row_bottom = out->data() + base + static_cast<size_t>(m + j) * s;
      for (int i = 0; i < m; ++i) {
        row_top[m + i] *= inv;     // horizontal quadrant
        row_bottom[i] *= inv;      // vertical quadrant
        row_bottom[m + i] *= inv;  // diagonal quadrant
      }
    }
  }
}

Result<WindowSignatureSet> ComputeWindowSignatures(
    const ImageF& image, const WalrusParams& params) {
  WALRUS_RETURN_IF_ERROR(params.Validate());
  if (image.empty()) return Status::InvalidArgument("empty image");
  WALRUS_ASSIGN_OR_RETURN(ImageF converted,
                          ConvertColorSpace(image, params.color_space));
  const int channels = params.Channels();
  WALRUS_CHECK_EQ(converted.channels(), channels);

  if (converted.width() < params.min_window ||
      converted.height() < params.min_window) {
    return Status::InvalidArgument(
        "image smaller than min_window: " + std::to_string(converted.width()) +
        "x" + std::to_string(converted.height()));
  }
  int max_window = std::min<int>(
      params.max_window,
      NextPowerOfTwo(static_cast<uint32_t>(
          std::min(converted.width(), converted.height()))));
  while (max_window > std::min(converted.width(), converted.height())) {
    max_window /= 2;
  }
  WALRUS_CHECK_GE(max_window, params.min_window);

  const int s = params.signature_size;

  // Per-channel DP sweep; all levels up to max_window are produced, we keep
  // those in [min_window, max_window].
  std::vector<std::vector<WindowSignatureGrid>> per_channel;
  per_channel.reserve(channels);
  for (int c = 0; c < channels; ++c) {
    per_channel.push_back(ComputeSlidingWindowSignatures(
        converted.Plane(c), converted.width(), converted.height(), s,
        max_window, params.slide_step));
  }

  WindowSignatureSet set;
  set.dim = params.SignatureDim();
  for (size_t level = 0; level < per_channel[0].size(); ++level) {
    const WindowSignatureGrid& grid0 = per_channel[0][level];
    if (grid0.window_size < params.min_window) continue;
    WALRUS_CHECK_EQ(grid0.sig_n, s);
    for (int iy = 0; iy < grid0.ny; ++iy) {
      for (int ix = 0; ix < grid0.nx; ++ix) {
        set.windows.push_back(
            {grid0.RootX(ix), grid0.RootY(iy), grid0.window_size});
        for (int c = 0; c < channels; ++c) {
          AppendNormalizedBlock(per_channel[c][level].SigAt(ix, iy), s,
                                &set.signatures);
        }
      }
    }
  }
  WALRUS_CHECK_EQ(set.signatures.size(),
                  set.windows.size() * static_cast<size_t>(set.dim));
  return set;
}

}  // namespace walrus
