#ifndef WALRUS_CORE_SHARDED_INDEX_H_
#define WALRUS_CORE_SHARDED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/index.h"
#include "core/query.h"
#include "core/query_engine.h"
#include "core/result_cache.h"

namespace walrus {

/// Horizontally partitioned WALRUS database: images are hash-routed across
/// N independent WalrusIndex shards (each with its own R*-tree or paged
/// backend), and every query fans out to all shards in parallel. Because
/// the query pipeline's probe and score stages are deterministic in the
/// indexed data (core/query_pipeline.h) and the final rank is a total
/// order, a ShardedIndex returns **byte-identical rankings** to one
/// monolithic WalrusIndex holding the same images — sharding changes only
/// where the probe work runs. (Exception: kNN probing, where per-shard
/// top-k lists are merged by (distance, payload); exact tie order at the
/// k-th distance can differ from a single tree's traversal-order ties.)
///
/// An optional LRU result cache (core/result_cache.h) sits in front of the
/// whole pipeline: repeated hot queries skip extraction, probing, and
/// matching. Any mutation (AddImage / AddImages / RemoveImage) invalidates
/// the entire cache — see the invalidation rules in DESIGN.md §11.
///
/// Thread-safety: concurrent queries are safe (shards are read-only during
/// queries, the cache locks internally, fan-out uses a per-call latch on
/// the engine's own pool). Mutations are NOT safe concurrently with queries
/// or each other — same contract as WalrusIndex.
class ShardedIndex : public QueryEngine {
 public:
  struct Options {
    /// Number of shards (>= 1). Fixed for the lifetime of the engine and
    /// baked into saved layouts.
    int num_shards = 1;
    /// Result-cache capacity in entries; 0 disables caching.
    size_t cache_capacity = 0;
    /// Fan-out pool size; 0 sizes it to min(num_shards, hardware) - 1
    /// (the calling thread always runs shard 0's probe itself).
    int fanout_threads = 0;
  };

  /// Which shard owns an image id: splitmix64(image_id) % num_shards.
  /// Hashed, not modulo raw ids, so sequential id ranges spread evenly.
  static int ShardOf(uint64_t image_id, int num_shards);

  /// Empty sharded index; images arrive via AddImage / AddImages.
  ShardedIndex(WalrusParams params, Options options);

  /// Repartitions an existing single index: every catalog record is routed
  /// to its shard and each shard's tree is STR-bulk-loaded — region
  /// extraction is NOT re-run. This is how walrusd serves a saved
  /// single-index layout with --shards N.
  static Result<ShardedIndex> Partition(const WalrusIndex& source,
                                        Options options);

  // -- QueryEngine ---------------------------------------------------------

  Result<std::vector<QueryMatch>> RunQuery(
      const ImageF& query_image, const QueryOptions& options,
      QueryStats* stats = nullptr) const override;

  Result<std::vector<QueryMatch>> RunSceneQuery(
      const ImageF& query_image, const PixelRect& scene,
      const QueryOptions& options, QueryStats* stats = nullptr) const override;

  size_t ImageCount() const override;
  size_t RegionCount() const override;
  EngineStats Stats() const override;

  // -- Mutations (invalidate the result cache) -----------------------------

  /// Routes to the owning shard. Same contract as WalrusIndex::AddImage.
  Status AddImage(uint64_t image_id, const std::string& name,
                  const ImageF& image);

  /// Splits the batch by owning shard and bulk-adds per shard. Atomic per
  /// the WalrusIndex::AddImages contract only when ids are pre-validated;
  /// duplicate ids are rejected up front across all shards.
  Status AddImages(std::vector<WalrusIndex::PendingImage> images,
                   int num_threads = 0);

  /// Removes from the owning shard; NotFound when absent.
  Status RemoveImage(uint64_t image_id);

  // -- Persistence ---------------------------------------------------------

  /// Writes `<prefix>.smeta` (shard manifest) plus one single-index layout
  /// per shard under `<prefix>.s<i>`. `paged` selects
  /// WalrusIndex::SavePaged per shard instead of Save.
  Status Save(const std::string& path_prefix, bool paged = false) const;

  /// Opens a layout written by Save. Cache/fan-out sizing comes from
  /// `options`; its num_shards is ignored (the manifest decides).
  static Result<ShardedIndex> Open(const std::string& path_prefix,
                                   Options options);
  static Result<ShardedIndex> Open(const std::string& path_prefix);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const WalrusIndex& shard(int i) const { return shards_[i]; }
  const WalrusParams& params() const { return params_; }
  const ResultCache* result_cache() const { return cache_.get(); }

 private:
  ShardedIndex(WalrusParams params, Options options,
               std::vector<WalrusIndex> shards);

  /// Probe + score on every shard in parallel, then merge and rank.
  Result<std::vector<QueryMatch>> RunPipelineSharded(
      const std::vector<Region>& query_regions, double query_area,
      const QueryOptions& options, QueryStats* stats,
      QueryTrace* trace) const;

  WalrusParams params_;
  Options options_;
  std::vector<WalrusIndex> shards_;
  /// Cumulative regions retrieved by probes, per shard (EngineStats).
  mutable std::vector<std::atomic<uint64_t>> shard_probe_regions_;
  /// Registry mirrors: walrus.sharded.probe_regions.s<i>.
  std::vector<Counter*> shard_probe_counters_;
  std::unique_ptr<ResultCache> cache_;
  /// Engine-owned fan-out pool. Separate from any caller pool on purpose:
  /// ThreadPool::Wait() waits for ALL queued work, so per-query fan-out
  /// synchronizes with a per-call latch instead, and nesting this engine
  /// under ExecuteQueryBatch's pool cannot deadlock.
  mutable std::unique_ptr<ThreadPool> fanout_pool_;
};

}  // namespace walrus

#endif  // WALRUS_CORE_SHARDED_INDEX_H_
