#ifndef WALRUS_SPATIAL_RSTAR_TREE_H_
#define WALRUS_SPATIAL_RSTAR_TREE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "spatial/rect.h"

namespace walrus {

/// Node-split algorithm. kRStar is the margin/overlap-optimizing split of
/// Beckmann et al.; kQuadratic is Guttman's classic quadratic split,
/// provided as an ablation (WALRUS's GiST dependency shipped a plain
/// R-tree alongside the R*-tree).
enum class SplitPolicy : uint8_t {
  kRStar = 0,
  kQuadratic = 1,
};

/// Tuning knobs for the R*-tree [BKSS90].
struct RStarParams {
  /// Maximum entries per node (M). Minimum fill is 40% of M.
  int max_entries = 16;
  /// Fraction of entries force-reinserted on the first overflow of a level
  /// (the paper's p = 30%).
  double reinsert_fraction = 0.3;
  /// Split algorithm.
  SplitPolicy split_policy = SplitPolicy::kRStar;
  /// Disable to get plain R-tree overflow handling (split immediately,
  /// never reinsert).
  bool use_forced_reinsert = true;
};

/// In-memory R*-tree over (Rect, uint64 payload) entries with file
/// serialization. WALRUS stores one entry per image region: the rect is the
/// region signature (a point for centroid signatures, a box for
/// bounding-box signatures) and the payload identifies (image, region).
///
/// Implements the R* heuristics: ChooseSubtree with minimum overlap
/// enlargement at leaf level, forced reinsertion on first overflow, and the
/// margin-then-overlap split of Beckmann et al.
class RStarTree {
 public:
  explicit RStarTree(int dim, RStarParams params = RStarParams());

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;
  RStarTree(RStarTree&&) noexcept;
  RStarTree& operator=(RStarTree&&) noexcept;
  ~RStarTree();

  int dim() const { return dim_; }
  int64_t size() const { return size_; }
  int height() const;

  /// Inserts an entry. `rect` must have the tree's dimensionality.
  void Insert(const Rect& rect, uint64_t payload);

  /// Removes the entry with this exact payload whose rect equals `rect`.
  /// Underfull nodes are dissolved and their entries re-inserted
  /// (Guttman's CondenseTree, as R* prescribes). Returns NotFound when no
  /// such entry exists.
  Status Delete(const Rect& rect, uint64_t payload);

  /// Removes every leaf entry whose payload satisfies `predicate`,
  /// regardless of rect. Returns the number of entries removed. Used to
  /// drop all regions of one image.
  int64_t DeleteIf(const std::function<bool(uint64_t)>& predicate);

  /// Collects the payloads of all entries whose rects intersect `query`.
  std::vector<uint64_t> RangeSearch(const Rect& query) const;

  /// Like RangeSearch but streams results to `visitor`; return false from
  /// the visitor to stop early.
  void RangeSearchVisit(
      const Rect& query,
      const std::function<bool(const Rect&, uint64_t)>& visitor) const;

  /// Batched multi-probe range search: answers all `probes` in ONE tree
  /// traversal instead of one descent per probe. Probes are Hilbert-sorted
  /// (first two center dimensions) so nearby probes stay adjacent in the
  /// per-node active sets; each visited node's entries are packed once into
  /// a SoA scratch block and every active probe is filtered against them
  /// with one batch SIMD kernel call (common/simd.h). A node is descended
  /// at most once per batch, so shared upper levels of the tree are read
  /// once rather than once per query region.
  ///
  /// `visitor(probe, rect, payload)` receives the index into `probes` of
  /// the matching probe; the set of (probe, payload) pairs delivered is
  /// exactly the union over p of RangeSearchVisit(probes[p]) results,
  /// though the delivery ORDER differs (grouped by node, not by probe).
  /// Returning false aborts the entire batch. Thread-safe against
  /// concurrent read-only searches: all traversal state is call-local.
  void RangeQueryBatch(
      const std::vector<Rect>& probes,
      const std::function<bool(int, const Rect&, uint64_t)>& visitor) const;

  /// The k entries whose rects minimize the distance to `point`
  /// (min-distance best-first search). Returns (payload, distance) pairs in
  /// ascending distance order.
  std::vector<std::pair<uint64_t, double>> NearestNeighbors(
      const std::vector<float>& point, int k) const;

  /// Number of tree nodes visited by the last RangeSearch / NearestNeighbors
  /// on this tree (diagnostics for the selectivity benchmark; with
  /// concurrent readers it reflects whichever search finished last).
  int64_t last_nodes_visited() const {
    return last_nodes_visited_.load(std::memory_order_relaxed);
  }

  /// Bounding rect of everything in the tree (empty rect when empty).
  Rect BoundingRect() const;

  /// Deep structural validation: every child MBR is contained in (and the
  /// stored parent rect equals) its subtree's bounding rect, min/max fan-out
  /// is respected, levels decrease by one toward uniform-depth leaves,
  /// parent pointers are consistent, rect dimensionality matches the tree,
  /// and the leaf entry count equals size(). Returns an error describing the
  /// first violation. O(n); invoked from tests and, when DeepChecksEnabled(),
  /// after index mutations.
  Status Validate() const;

  /// Serialization (bulk dump/load of the tree structure).
  void Serialize(BinaryWriter* writer) const;
  static Result<RStarTree> Deserialize(BinaryReader* reader);

  /// Sort-Tile-Recursive bulk loading [Leutenegger et al.]: packs the
  /// entries bottom-up into a tree with near-full nodes. Much faster than
  /// repeated Insert for large batches and yields tighter nodes; the
  /// resulting tree supports normal inserts/deletes afterwards.
  static RStarTree BulkLoad(int dim,
                            std::vector<std::pair<Rect, uint64_t>> entries,
                            RStarParams params = RStarParams());

 private:
  struct Node;
  struct Entry;

  Node* ChooseSubtree(Node* node, const Rect& rect, int target_level,
                      int current_level);
  void InsertAtLevel(Entry entry, int target_level);
  void OverflowTreatment(Node* node, int level,
                         std::vector<bool>* reinserted_at_level);
  void SplitNode(Node* node);
  /// Computes the two index groups for the chosen split policy.
  void ChooseSplitGroups(const Node* node, std::vector<int>* left,
                         std::vector<int>* right) const;
  void QuadraticSplitGroups(const Node* node, std::vector<int>* left,
                            std::vector<int>* right) const;
  void AdjustUpward(Node* node);
  /// Dissolves underfull ancestors of `leaf` and re-inserts their entries;
  /// shrinks the root when it has a single child.
  void CondenseTree(Node* leaf);

  int dim_;
  RStarParams params_;
  int64_t size_ = 0;
  std::unique_ptr<Node> root_;
  mutable std::atomic<int64_t> last_nodes_visited_{0};

  // Transient state for one public Insert (forced-reinsert bookkeeping).
  std::vector<bool> reinserted_at_level_;
};

}  // namespace walrus

#endif  // WALRUS_SPATIAL_RSTAR_TREE_H_
