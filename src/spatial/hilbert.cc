#include "spatial/hilbert.h"

#include <algorithm>

namespace walrus {

uint64_t HilbertIndex2D(uint32_t x, uint32_t y, int order) {
  if (order <= 0) return 0;
  if (order > 31) order = 31;
  const uint32_t n = uint32_t{1} << order;
  x = std::min(x, n - 1);
  y = std::min(y, n - 1);
  uint64_t d = 0;
  for (uint32_t s = n / 2; s > 0; s /= 2) {
    const uint32_t rx = (x & s) ? 1 : 0;
    const uint32_t ry = (y & s) ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant so the curve stays continuous.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

uint64_t HilbertProbeKey(float cx, float cy, float min_v, float max_v) {
  const float range = max_v - min_v;
  const float scale = range > 0.0f ? 65535.0f / range : 0.0f;
  const auto quantize = [&](float v) -> uint32_t {
    float q = (v - min_v) * scale;
    if (!(q > 0.0f)) q = 0.0f;          // also catches NaN
    if (q > 65535.0f) q = 65535.0f;
    return static_cast<uint32_t>(q);
  };
  return HilbertIndex2D(quantize(cx), quantize(cy), 16);
}

}  // namespace walrus
