#ifndef WALRUS_SPATIAL_HILBERT_H_
#define WALRUS_SPATIAL_HILBERT_H_

#include <cstdint>

namespace walrus {

/// Index of cell (x, y) along the order-`order` Hilbert curve over a
/// 2^order x 2^order grid (coordinates above the grid are clamped).
/// Batched multi-probe sorts query-region probes by this key so probes that
/// are near in signature space stay adjacent in the shared R*-tree
/// traversal's active sets (spatial/rstar_tree.h).
uint64_t HilbertIndex2D(uint32_t x, uint32_t y, int order);

/// Hilbert key for a probe rect center: quantizes the first two dimensions
/// of the center (cx, cy), each assumed roughly within [min_v, max_v], onto
/// a 2^16 grid. Signature dims beyond the first two contribute nothing --
/// the sort only needs locality, not a total spatial order.
uint64_t HilbertProbeKey(float cx, float cy, float min_v, float max_v);

}  // namespace walrus

#endif  // WALRUS_SPATIAL_HILBERT_H_
