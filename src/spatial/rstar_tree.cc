#include "spatial/rstar_tree.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"
#include "common/metrics.h"
#include "common/simd.h"
#include "spatial/hilbert.h"

namespace walrus {

struct RStarTree::Entry {
  Rect rect;
  uint64_t payload = 0;          // meaningful in leaves
  std::unique_ptr<Node> child;   // non-null in internal nodes
};

struct RStarTree::Node {
  int level = 0;  // 0 = leaf
  Node* parent = nullptr;
  std::vector<Entry> entries;

  bool is_leaf() const { return level == 0; }

  Rect ComputeBoundingRect(int dim) const {
    Rect r = Rect::Empty(dim);
    for (const Entry& e : entries) r.ExpandToInclude(e.rect);
    return r;
  }
};

RStarTree::RStarTree(int dim, RStarParams params)
    : dim_(dim), params_(params), root_(std::make_unique<Node>()) {
  WALRUS_CHECK_GE(dim, 1);
  WALRUS_CHECK_GE(params.max_entries, 4);
  WALRUS_CHECK(params.reinsert_fraction > 0.0 &&
               params.reinsert_fraction < 0.5);
}

RStarTree::RStarTree(RStarTree&& other) noexcept
    : dim_(other.dim_),
      params_(other.params_),
      size_(other.size_),
      root_(std::move(other.root_)),
      last_nodes_visited_(
          other.last_nodes_visited_.load(std::memory_order_relaxed)),
      reinserted_at_level_(std::move(other.reinserted_at_level_)) {}

RStarTree& RStarTree::operator=(RStarTree&& other) noexcept {
  if (this != &other) {
    dim_ = other.dim_;
    params_ = other.params_;
    size_ = other.size_;
    root_ = std::move(other.root_);
    last_nodes_visited_.store(
        other.last_nodes_visited_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    reinserted_at_level_ = std::move(other.reinserted_at_level_);
  }
  return *this;
}

RStarTree::~RStarTree() = default;

int RStarTree::height() const { return root_->level + 1; }

namespace {

/// Minimum fill: 40% of M as in [BKSS90].
int MinEntries(int max_entries) { return std::max(2, (max_entries * 2) / 5); }

double CenterSquaredDistance(const Rect& a, const Rect& b) {
  double sum = 0.0;
  for (int i = 0; i < a.dim(); ++i) {
    double ca = 0.5 * (static_cast<double>(a.lo(i)) + a.hi(i));
    double cb = 0.5 * (static_cast<double>(b.lo(i)) + b.hi(i));
    sum += (ca - cb) * (ca - cb);
  }
  return sum;
}

}  // namespace

RStarTree::Node* RStarTree::ChooseSubtree(Node* node, const Rect& rect,
                                          int target_level,
                                          int current_level) {
  while (current_level > target_level) {
    WALRUS_DCHECK(!node->is_leaf());
    size_t best = 0;
    if (node->level == 1) {
      // Children are leaves: minimize overlap enlargement (R* heuristic).
      double best_overlap_delta = std::numeric_limits<double>::infinity();
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < node->entries.size(); ++i) {
        Rect enlarged = Rect::Union(node->entries[i].rect, rect);
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (size_t j = 0; j < node->entries.size(); ++j) {
          if (j == i) continue;
          overlap_before +=
              node->entries[i].rect.OverlapArea(node->entries[j].rect);
          overlap_after += enlarged.OverlapArea(node->entries[j].rect);
        }
        double overlap_delta = overlap_after - overlap_before;
        double enlargement = node->entries[i].rect.Enlargement(rect);
        double area = node->entries[i].rect.Area();
        if (overlap_delta < best_overlap_delta ||
            (overlap_delta == best_overlap_delta &&
             (enlargement < best_enlargement ||
              (enlargement == best_enlargement && area < best_area)))) {
          best_overlap_delta = overlap_delta;
          best_enlargement = enlargement;
          best_area = area;
          best = i;
        }
      }
    } else {
      // Minimize area enlargement, ties by smaller area.
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < node->entries.size(); ++i) {
        double enlargement = node->entries[i].rect.Enlargement(rect);
        double area = node->entries[i].rect.Area();
        if (enlargement < best_enlargement ||
            (enlargement == best_enlargement && area < best_area)) {
          best_enlargement = enlargement;
          best_area = area;
          best = i;
        }
      }
    }
    node->entries[best].rect.ExpandToInclude(rect);
    node = node->entries[best].child.get();
    current_level = node->level;
  }
  return node;
}

void RStarTree::Insert(const Rect& rect, uint64_t payload) {
  WALRUS_CHECK_EQ(rect.dim(), dim_);
  WALRUS_CHECK(!rect.IsEmpty());
  reinserted_at_level_.assign(root_->level + 2, false);
  Entry entry;
  entry.rect = rect;
  entry.payload = payload;
  InsertAtLevel(std::move(entry), /*target_level=*/0);
  ++size_;
}

void RStarTree::InsertAtLevel(Entry entry, int target_level) {
  Node* node = ChooseSubtree(root_.get(), entry.rect, target_level,
                             root_->level);
  WALRUS_DCHECK_EQ(node->level, target_level);
  if (entry.child != nullptr) entry.child->parent = node;
  node->entries.push_back(std::move(entry));
  if (static_cast<int>(node->entries.size()) > params_.max_entries) {
    OverflowTreatment(node, target_level, &reinserted_at_level_);
  } else {
    AdjustUpward(node);
  }
}

void RStarTree::OverflowTreatment(Node* node, int level,
                                  std::vector<bool>* reinserted_at_level) {
  if (params_.use_forced_reinsert && node != root_.get() &&
      level < static_cast<int>(reinserted_at_level->size()) &&
      !(*reinserted_at_level)[level]) {
    (*reinserted_at_level)[level] = true;
    // Forced reinsert: remove the p entries whose centers are farthest from
    // the node's bounding-rect center, then reinsert them (closest first).
    int p = std::max(
        1, static_cast<int>(params_.reinsert_fraction * node->entries.size()));
    Rect bounds = node->ComputeBoundingRect(dim_);
    std::vector<std::pair<double, size_t>> by_distance;
    by_distance.reserve(node->entries.size());
    for (size_t i = 0; i < node->entries.size(); ++i) {
      by_distance.emplace_back(
          CenterSquaredDistance(node->entries[i].rect, bounds), i);
    }
    std::sort(by_distance.begin(), by_distance.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<Entry> removed;
    removed.reserve(p);
    std::vector<bool> remove_flag(node->entries.size(), false);
    for (int i = 0; i < p; ++i) remove_flag[by_distance[i].second] = true;
    std::vector<Entry> kept;
    kept.reserve(node->entries.size() - p);
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (remove_flag[i]) {
        removed.push_back(std::move(node->entries[i]));
      } else {
        kept.push_back(std::move(node->entries[i]));
      }
    }
    node->entries = std::move(kept);
    AdjustUpward(node);
    // Close reinsert: nearest-removed first ([BKSS90] found this best).
    std::reverse(removed.begin(), removed.end());
    for (Entry& e : removed) {
      InsertAtLevel(std::move(e), level);
    }
    return;
  }
  SplitNode(node);
}

void RStarTree::SplitNode(Node* node) {
  std::vector<int> left_group;
  std::vector<int> right_group;
  ChooseSplitGroups(node, &left_group, &right_group);

  // Materialize the two groups.
  auto sibling = std::make_unique<Node>();
  sibling->level = node->level;
  std::vector<Entry> left_entries;
  left_entries.reserve(left_group.size());
  for (int i : left_group) {
    left_entries.push_back(std::move(node->entries[i]));
  }
  for (int i : right_group) {
    Entry& e = node->entries[i];
    if (e.child != nullptr) e.child->parent = sibling.get();
    sibling->entries.push_back(std::move(e));
  }
  node->entries = std::move(left_entries);

  if (node == root_.get()) {
    auto new_root = std::make_unique<Node>();
    new_root->level = node->level + 1;
    Entry left;
    left.rect = node->ComputeBoundingRect(dim_);
    left.child = std::move(root_);
    Entry right;
    right.rect = sibling->ComputeBoundingRect(dim_);
    right.child = std::move(sibling);
    left.child->parent = new_root.get();
    right.child->parent = new_root.get();
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  // Refresh the split node's rect in its parent.
  for (Entry& e : parent->entries) {
    if (e.child.get() == node) {
      e.rect = node->ComputeBoundingRect(dim_);
      break;
    }
  }
  Entry sibling_entry;
  sibling_entry.rect = sibling->ComputeBoundingRect(dim_);
  sibling->parent = parent;
  sibling_entry.child = std::move(sibling);
  parent->entries.push_back(std::move(sibling_entry));
  AdjustUpward(parent);
  if (static_cast<int>(parent->entries.size()) > params_.max_entries) {
    OverflowTreatment(parent, parent->level, &reinserted_at_level_);
  }
}

void RStarTree::ChooseSplitGroups(const Node* node, std::vector<int>* left,
                                  std::vector<int>* right) const {
  if (params_.split_policy == SplitPolicy::kQuadratic) {
    QuadraticSplitGroups(node, left, right);
    return;
  }

  const int total = static_cast<int>(node->entries.size());
  const int min_fill = MinEntries(params_.max_entries);
  WALRUS_DCHECK_GE(total, 2 * min_fill);

  // R* split. Step 1: choose the split axis minimizing the summed margins
  // of all candidate distributions.
  int best_axis = 0;
  bool best_axis_by_hi = false;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  std::vector<int> order(total);

  auto sort_order = [&](int axis, bool by_hi) {
    for (int i = 0; i < total; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const Rect& ra = node->entries[a].rect;
      const Rect& rb = node->entries[b].rect;
      float ka = by_hi ? ra.hi(axis) : ra.lo(axis);
      float kb = by_hi ? rb.hi(axis) : rb.lo(axis);
      if (ka != kb) return ka < kb;
      return (by_hi ? ra.lo(axis) : ra.hi(axis)) <
             (by_hi ? rb.lo(axis) : rb.hi(axis));
    });
  };

  auto evaluate_margins = [&]() {
    // Prefix/suffix bounding rects over the current `order`.
    std::vector<Rect> prefix(total), suffix(total);
    Rect acc = Rect::Empty(dim_);
    for (int i = 0; i < total; ++i) {
      acc.ExpandToInclude(node->entries[order[i]].rect);
      prefix[i] = acc;
    }
    acc = Rect::Empty(dim_);
    for (int i = total - 1; i >= 0; --i) {
      acc.ExpandToInclude(node->entries[order[i]].rect);
      suffix[i] = acc;
    }
    double margin_sum = 0.0;
    for (int k = min_fill; k <= total - min_fill; ++k) {
      margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
    }
    return margin_sum;
  };

  for (int axis = 0; axis < dim_; ++axis) {
    for (bool by_hi : {false, true}) {
      sort_order(axis, by_hi);
      double margin_sum = evaluate_margins();
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_axis = axis;
        best_axis_by_hi = by_hi;
      }
    }
  }

  // Step 2: along the chosen axis, pick the distribution with minimum
  // overlap (ties: minimum combined area).
  sort_order(best_axis, best_axis_by_hi);
  std::vector<Rect> prefix(total), suffix(total);
  Rect acc = Rect::Empty(dim_);
  for (int i = 0; i < total; ++i) {
    acc.ExpandToInclude(node->entries[order[i]].rect);
    prefix[i] = acc;
  }
  acc = Rect::Empty(dim_);
  for (int i = total - 1; i >= 0; --i) {
    acc.ExpandToInclude(node->entries[order[i]].rect);
    suffix[i] = acc;
  }
  int best_k = min_fill;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (int k = min_fill; k <= total - min_fill; ++k) {
    double overlap = prefix[k - 1].OverlapArea(suffix[k]);
    double area = prefix[k - 1].Area() + suffix[k].Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  left->assign(order.begin(), order.begin() + best_k);
  right->assign(order.begin() + best_k, order.end());
}

void RStarTree::QuadraticSplitGroups(const Node* node, std::vector<int>* left,
                                     std::vector<int>* right) const {
  // Guttman's quadratic split: seed with the pair wasting the most area,
  // then repeatedly place the entry with the largest preference difference
  // into its preferred group, respecting the minimum fill.
  const int total = static_cast<int>(node->entries.size());
  const int min_fill = MinEntries(params_.max_entries);
  left->clear();
  right->clear();

  int seed_a = 0;
  int seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < total; ++i) {
    for (int j = i + 1; j < total; ++j) {
      Rect combined =
          Rect::Union(node->entries[i].rect, node->entries[j].rect);
      double waste = combined.Area() - node->entries[i].rect.Area() -
                     node->entries[j].rect.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Rect left_rect = node->entries[seed_a].rect;
  Rect right_rect = node->entries[seed_b].rect;
  left->push_back(seed_a);
  right->push_back(seed_b);
  std::vector<bool> placed(total, false);
  placed[seed_a] = true;
  placed[seed_b] = true;
  int remaining = total - 2;

  while (remaining > 0) {
    // Forced placement when one group must absorb everything left to reach
    // the minimum fill.
    if (static_cast<int>(left->size()) + remaining == min_fill) {
      for (int i = 0; i < total; ++i) {
        if (!placed[i]) {
          left->push_back(i);
          placed[i] = true;
        }
      }
      break;
    }
    if (static_cast<int>(right->size()) + remaining == min_fill) {
      for (int i = 0; i < total; ++i) {
        if (!placed[i]) {
          right->push_back(i);
          placed[i] = true;
        }
      }
      break;
    }

    // PickNext: maximize |enlargement(left) - enlargement(right)|.
    int best = -1;
    double best_diff = -1.0;
    double best_dl = 0.0;
    double best_dr = 0.0;
    for (int i = 0; i < total; ++i) {
      if (placed[i]) continue;
      double dl = left_rect.Enlargement(node->entries[i].rect);
      double dr = right_rect.Enlargement(node->entries[i].rect);
      double diff = std::fabs(dl - dr);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
        best_dl = dl;
        best_dr = dr;
      }
    }
    WALRUS_DCHECK_GE(best, 0);
    bool to_left;
    if (best_dl != best_dr) {
      to_left = best_dl < best_dr;
    } else if (left_rect.Area() != right_rect.Area()) {
      to_left = left_rect.Area() < right_rect.Area();
    } else {
      to_left = left->size() <= right->size();
    }
    if (to_left) {
      left->push_back(best);
      left_rect.ExpandToInclude(node->entries[best].rect);
    } else {
      right->push_back(best);
      right_rect.ExpandToInclude(node->entries[best].rect);
    }
    placed[best] = true;
    --remaining;
  }
}

void RStarTree::AdjustUpward(Node* node) {
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    for (Entry& e : parent->entries) {
      if (e.child.get() == node) {
        e.rect = node->ComputeBoundingRect(dim_);
        break;
      }
    }
    node = parent;
  }
}

Status RStarTree::Delete(const Rect& rect, uint64_t payload) {
  WALRUS_CHECK_EQ(rect.dim(), dim_);
  // FindLeaf: depth-first through nodes whose rects contain `rect`.
  Node* leaf = nullptr;
  size_t entry_index = 0;
  std::vector<Node*> stack = {root_.get()};
  while (!stack.empty() && leaf == nullptr) {
    Node* node = stack.back();
    stack.pop_back();
    for (size_t i = 0; i < node->entries.size(); ++i) {
      Entry& e = node->entries[i];
      if (node->is_leaf()) {
        if (e.payload == payload && e.rect == rect) {
          leaf = node;
          entry_index = i;
          break;
        }
      } else if (e.rect.ContainsRect(rect) ||
                 (rect.Area() == 0.0 && e.rect.Intersects(rect))) {
        stack.push_back(e.child.get());
      }
    }
  }
  if (leaf == nullptr) {
    return Status::NotFound("rstar: entry not found for payload " +
                            std::to_string(payload));
  }
  leaf->entries.erase(leaf->entries.begin() + entry_index);
  --size_;
  CondenseTree(leaf);
  return Status::OK();
}

int64_t RStarTree::DeleteIf(const std::function<bool(uint64_t)>& predicate) {
  // Collect matching (rect, payload) pairs first, then delete one by one so
  // CondenseTree keeps the structure valid throughout.
  std::vector<std::pair<Rect, uint64_t>> doomed;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& e : node->entries) {
      if (node->is_leaf()) {
        if (predicate(e.payload)) doomed.emplace_back(e.rect, e.payload);
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  for (const auto& [rect, payload] : doomed) {
    Status status = Delete(rect, payload);
    WALRUS_DCHECK(status.ok()) << status;
  }
  return static_cast<int64_t>(doomed.size());
}

void RStarTree::CondenseTree(Node* leaf) {
  const int min_fill = MinEntries(params_.max_entries);
  std::vector<std::unique_ptr<Node>> orphans;

  Node* node = leaf;
  while (node != root_.get()) {
    Node* parent = node->parent;
    if (static_cast<int>(node->entries.size()) < min_fill) {
      // Detach the underfull node from its parent and queue its entries
      // for re-insertion.
      for (size_t i = 0; i < parent->entries.size(); ++i) {
        if (parent->entries[i].child.get() == node) {
          orphans.push_back(std::move(parent->entries[i].child));
          parent->entries.erase(parent->entries.begin() + i);
          break;
        }
      }
    } else {
      // Tighten this node's rect in the parent.
      for (Entry& e : parent->entries) {
        if (e.child.get() == node) {
          e.rect = node->ComputeBoundingRect(dim_);
          break;
        }
      }
    }
    node = parent;
  }

  // Shrink the root: an internal root with one child gets replaced by it.
  while (!root_->is_leaf() && root_->entries.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->entries[0].child);
    child->parent = nullptr;
    root_ = std::move(child);
  }
  if (!root_->is_leaf() && root_->entries.empty()) {
    // All children dissolved: reset to an empty leaf.
    root_ = std::make_unique<Node>();
  }

  // Re-insert orphaned subtrees' entries at their original levels (leaf
  // data re-enters at level 0; internal entries keep their subtree level).
  for (std::unique_ptr<Node>& orphan : orphans) {
    if (orphan->is_leaf()) {
      for (Entry& e : orphan->entries) {
        reinserted_at_level_.assign(root_->level + 2, false);
        InsertAtLevel(std::move(e), 0);
      }
    } else {
      for (Entry& e : orphan->entries) {
        reinserted_at_level_.assign(root_->level + 2, false);
        // Entries of a level-L node re-enter at level L (their children
        // stay at L-1).
        int target = orphan->level;
        if (target > root_->level) {
          // The tree shrank below this subtree's height: dismantle the
          // subtree down to data entries and re-insert those.
          std::vector<std::unique_ptr<Node>> sub;
          sub.push_back(std::move(e.child));
          while (!sub.empty()) {
            std::unique_ptr<Node> n = std::move(sub.back());
            sub.pop_back();
            for (Entry& se : n->entries) {
              if (n->is_leaf()) {
                reinserted_at_level_.assign(root_->level + 2, false);
                InsertAtLevel(std::move(se), 0);
              } else {
                sub.push_back(std::move(se.child));
              }
            }
          }
        } else {
          InsertAtLevel(std::move(e), target);
        }
      }
    }
  }
}

void RStarTree::RangeSearchVisit(
    const Rect& query,
    const std::function<bool(const Rect&, uint64_t)>& visitor) const {
  WALRUS_CHECK_EQ(query.dim(), dim_);
  static Counter* const probes =
      MetricsRegistry::Global().GetCounter("walrus.rstar.range_probes");
  static Counter* const nodes =
      MetricsRegistry::Global().GetCounter("walrus.rstar.nodes_visited");
  probes->Increment();
  // Accumulate locally so concurrent read-only searches do not race.
  int64_t visited = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++visited;
    for (const Entry& e : node->entries) {
      if (!e.rect.Intersects(query)) continue;
      if (node->is_leaf()) {
        if (!visitor(e.rect, e.payload)) {
          last_nodes_visited_.store(visited, std::memory_order_relaxed);
          nodes->Increment(static_cast<uint64_t>(visited));
          return;
        }
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  last_nodes_visited_.store(visited, std::memory_order_relaxed);
  nodes->Increment(static_cast<uint64_t>(visited));
}

void RStarTree::RangeQueryBatch(
    const std::vector<Rect>& probes,
    const std::function<bool(int, const Rect&, uint64_t)>& visitor) const {
  static Counter* const batch_probes =
      MetricsRegistry::Global().GetCounter("walrus.rstar.batch_probes");
  static Counter* const range_probes =
      MetricsRegistry::Global().GetCounter("walrus.rstar.range_probes");
  static Counter* const nodes =
      MetricsRegistry::Global().GetCounter("walrus.rstar.nodes_visited");
  static Histogram* const occupancy =
      MetricsRegistry::Global().GetHistogram("walrus.probe.batch_occupancy",
                                             ExponentialBuckets(1, 2, 12));
  batch_probes->Increment();
  // A batch of N probes answers N range probes; keep the per-probe counter
  // meaningful regardless of traversal strategy.
  range_probes->Increment(static_cast<uint64_t>(probes.size()));

  // Probe visit order: Hilbert on the first two center dimensions, so that
  // probes adjacent in signature space stay adjacent in active sets.
  std::vector<int> order;
  order.reserve(probes.size());
  for (int p = 0; p < static_cast<int>(probes.size()); ++p) {
    if (probes[p].IsEmpty()) continue;  // empty probes match nothing
    WALRUS_CHECK_EQ(probes[p].dim(), dim_);
    order.push_back(p);
  }
  if (order.empty()) return;
  if (order.size() > 1 && dim_ >= 2) {
    float min_v = std::numeric_limits<float>::max();
    float max_v = std::numeric_limits<float>::lowest();
    for (int p : order) {
      for (int d = 0; d < 2; ++d) {
        const float c = 0.5f * (probes[p].lo(d) + probes[p].hi(d));
        min_v = std::min(min_v, c);
        max_v = std::max(max_v, c);
      }
    }
    std::vector<uint64_t> keys(probes.size());
    for (int p : order) {
      keys[p] = HilbertProbeKey(0.5f * (probes[p].lo(0) + probes[p].hi(0)),
                                0.5f * (probes[p].lo(1) + probes[p].hi(1)),
                                min_v, max_v);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&keys](int a, int b) { return keys[a] < keys[b]; });
  }

  const simd::KernelTable& kern = simd::Active();
  // Active sets live in one append-only arena; each frame references a
  // slice of it. Child slices are appended in place of per-frame vector
  // allocations, and a frame whose active set did not split (single probe)
  // reuses its parent's slice outright.
  struct Frame {
    const Node* node;
    uint32_t begin;  // arena offset of this frame's active probe indices
    uint32_t len;
  };
  std::vector<int> arena = std::move(order);
  std::vector<Frame> stack;
  stack.push_back({root_.get(), 0, static_cast<uint32_t>(arena.size())});

  // Call-local scratch (concurrent readers share no traversal state).
  std::vector<float> scratch_lo;
  std::vector<float> scratch_hi;
  std::vector<uint64_t> masks;  // probe-major: masks[pi * words + w]
  std::vector<Frame> pending;   // children of the current node, entry order
  int64_t visited = 0;
  const auto finish = [&] {
    last_nodes_visited_.store(visited, std::memory_order_relaxed);
    nodes->Increment(static_cast<uint64_t>(visited));
  };

  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node* node = frame.node;
    ++visited;
    occupancy->Observe(static_cast<double>(frame.len));
    const int m = static_cast<int>(node->entries.size());
    if (m == 0) continue;

    if (frame.len == 1) {
      // Single active probe: a per-entry test beats packing the node into
      // SoA scratch (the pack would be read exactly once).
      const int p = arena[frame.begin];
      const Rect& probe = probes[p];
      if (node->is_leaf()) {
        for (const Entry& ent : node->entries) {
          if (kern.rect_intersects(ent.rect.lo().data(),
                                   ent.rect.hi().data(), probe.lo().data(),
                                   probe.hi().data(), dim_)) {
            if (!visitor(p, ent.rect, ent.payload)) {
              finish();
              return;
            }
          }
        }
      } else {
        // Reverse entry order so the DFS pops children first-entry-first.
        for (int e = m - 1; e >= 0; --e) {
          const Entry& ent = node->entries[e];
          if (kern.rect_intersects(ent.rect.lo().data(),
                                   ent.rect.hi().data(), probe.lo().data(),
                                   probe.hi().data(), dim_)) {
            stack.push_back({ent.child.get(), frame.begin, 1});
          }
        }
      }
      continue;
    }

    // Pack this node's rects once; every active probe filters against the
    // same SoA block.
    scratch_lo.resize(static_cast<size_t>(dim_) * m);
    scratch_hi.resize(static_cast<size_t>(dim_) * m);
    for (int e = 0; e < m; ++e) {
      const Rect& r = node->entries[e].rect;
      for (int d = 0; d < dim_; ++d) {
        scratch_lo[static_cast<size_t>(d) * m + e] = r.lo(d);
        scratch_hi[static_cast<size_t>(d) * m + e] = r.hi(d);
      }
    }
    const int words = (m + 63) / 64;

    if (node->is_leaf()) {
      masks.resize(words);
      for (uint32_t pi = 0; pi < frame.len; ++pi) {
        const int p = arena[frame.begin + pi];
        kern.batch_intersects(scratch_lo.data(), scratch_hi.data(), m, dim_,
                              m, probes[p].lo().data(),
                              probes[p].hi().data(), masks.data());
        for (int w = 0; w < words; ++w) {
          uint64_t bits = masks[w];
          while (bits != 0) {
            const int e = w * 64 + std::countr_zero(bits);
            bits &= bits - 1;
            const Entry& ent = node->entries[e];
            if (!visitor(p, ent.rect, ent.payload)) {
              finish();
              return;
            }
          }
        }
      }
    } else {
      masks.resize(static_cast<size_t>(words) * frame.len);
      for (uint32_t pi = 0; pi < frame.len; ++pi) {
        const int p = arena[frame.begin + pi];
        kern.batch_intersects(scratch_lo.data(), scratch_hi.data(), m, dim_,
                              m, probes[p].lo().data(),
                              probes[p].hi().data(),
                              masks.data() + static_cast<size_t>(pi) * words);
      }
      // Gather each child's active probes (probe order preserved) into
      // fresh arena slices, then push in reverse entry order so the DFS
      // pops children first-entry-first.
      pending.clear();
      for (int e = 0; e < m; ++e) {
        const uint32_t begin = static_cast<uint32_t>(arena.size());
        const int w = e >> 6;
        const uint64_t bit = uint64_t{1} << (e & 63);
        for (uint32_t pi = 0; pi < frame.len; ++pi) {
          if (masks[static_cast<size_t>(pi) * words + w] & bit) {
            arena.push_back(arena[frame.begin + pi]);
          }
        }
        const uint32_t len = static_cast<uint32_t>(arena.size()) - begin;
        if (len > 0) {
          pending.push_back({node->entries[e].child.get(), begin, len});
        }
      }
      for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
  finish();
}

std::vector<uint64_t> RStarTree::RangeSearch(const Rect& query) const {
  std::vector<uint64_t> out;
  RangeSearchVisit(query, [&out](const Rect&, uint64_t payload) {
    out.push_back(payload);
    return true;
  });
  return out;
}

std::vector<std::pair<uint64_t, double>> RStarTree::NearestNeighbors(
    const std::vector<float>& point, int k) const {
  WALRUS_CHECK_EQ(static_cast<int>(point.size()), dim_);
  WALRUS_CHECK_GE(k, 1);
  static Counter* const probes =
      MetricsRegistry::Global().GetCounter("walrus.rstar.knn_probes");
  static Counter* const nodes =
      MetricsRegistry::Global().GetCounter("walrus.rstar.nodes_visited");
  probes->Increment();
  int64_t visited = 0;

  struct QueueItem {
    double dist;
    const Node* node;    // non-null for subtree items
    const Entry* entry;  // non-null for leaf-entry items
    /// Min-heap order: distance first; at equal distance subtrees pop
    /// before leaf entries (an unexpanded subtree may still hold an
    /// equal-distance entry with a smaller payload), and tied entries pop
    /// by payload. This makes the neighbor list a function of the entry
    /// set alone, not of tree layout, so bulk-loaded and incrementally
    /// built trees return identical results even under distance ties.
    bool operator>(const QueueItem& other) const {
      if (dist != other.dist) return dist > other.dist;
      const bool leaf = entry != nullptr;
      const bool other_leaf = other.entry != nullptr;
      if (leaf != other_leaf) return leaf;
      if (leaf) return entry->payload > other.entry->payload;
      return false;
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> heap;
  heap.push({0.0, root_.get(), nullptr});

  std::vector<std::pair<uint64_t, double>> result;
  while (!heap.empty() && static_cast<int>(result.size()) < k) {
    QueueItem item = heap.top();
    heap.pop();
    if (item.entry != nullptr) {
      result.emplace_back(item.entry->payload, std::sqrt(item.dist));
      continue;
    }
    ++visited;
    for (const Entry& e : item.node->entries) {
      double d = e.rect.MinSquaredDistance(point);
      if (item.node->is_leaf()) {
        heap.push({d, nullptr, &e});
      } else {
        heap.push({d, e.child.get(), nullptr});
      }
    }
  }
  last_nodes_visited_.store(visited, std::memory_order_relaxed);
  nodes->Increment(static_cast<uint64_t>(visited));
  return result;
}

Rect RStarTree::BoundingRect() const { return root_->ComputeBoundingRect(dim_); }

Status RStarTree::Validate() const {
  // Walk the tree iteratively; validate levels, fills and bounding rects.
  struct Item {
    const Node* node;
    const Rect* parent_rect;
  };
  std::vector<Item> stack = {{root_.get(), nullptr}};
  int min_fill = MinEntries(params_.max_entries);
  int64_t leaf_entries = 0;
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    const Node* node = item.node;
    int count = static_cast<int>(node->entries.size());
    if (count > params_.max_entries) {
      return Status::Internal("node overflow: " + std::to_string(count));
    }
    if (node != root_.get() && count < min_fill) {
      return Status::Internal("node underflow: " + std::to_string(count));
    }
    if (node->level < 0) {
      return Status::Internal("negative node level");
    }
    if (item.parent_rect != nullptr) {
      Rect bounds = node->ComputeBoundingRect(dim_);
      if (!(*item.parent_rect == bounds)) {
        return Status::Internal("stale parent bounding rect");
      }
    }
    for (const Entry& e : node->entries) {
      if (e.rect.IsEmpty()) {
        return Status::Internal("empty entry rect");
      }
      if (e.rect.dim() != dim_) {
        return Status::Internal("entry rect dimension " +
                                std::to_string(e.rect.dim()) + " != tree " +
                                std::to_string(dim_));
      }
      if (item.parent_rect != nullptr &&
          !item.parent_rect->ContainsRect(e.rect)) {
        return Status::Internal("entry rect escapes parent MBR");
      }
      if (node->is_leaf()) {
        ++leaf_entries;
        if (e.child != nullptr) {
          return Status::Internal("leaf entry with child");
        }
      } else {
        if (e.child == nullptr) {
          return Status::Internal("internal entry without child");
        }
        if (e.child->level != node->level - 1) {
          return Status::Internal("level mismatch");
        }
        if (e.child->parent != node) {
          return Status::Internal("bad parent pointer");
        }
        stack.push_back({e.child.get(), &e.rect});
      }
    }
  }
  if (leaf_entries != size_) {
    return Status::Internal("size mismatch: counted " +
                            std::to_string(leaf_entries) + " expected " +
                            std::to_string(size_));
  }
  return Status::OK();
}

namespace {

/// Splits [0, n) into `groups` nearly equal consecutive chunk sizes.
std::vector<int> BalancedChunks(int n, int groups) {
  std::vector<int> sizes(groups, n / groups);
  for (int i = 0; i < n % groups; ++i) ++sizes[i];
  return sizes;
}

}  // namespace

RStarTree RStarTree::BulkLoad(int dim,
                              std::vector<std::pair<Rect, uint64_t>> entries,
                              RStarParams params) {
  RStarTree tree(dim, params);
  if (entries.empty()) return tree;
  const int capacity = params.max_entries;

  // STR tiling over index ranges: sort a range by the center of one
  // dimension, slice into balanced slabs, recurse on the next dimension;
  // the innermost dimension emits the leaf-sized groups.
  struct Range {
    int begin;
    int end;
  };
  std::vector<int> order(entries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  std::vector<Range> groups;
  std::function<void(int, int, int)> tile = [&](int begin, int end,
                                                int dim_index) {
    int n = end - begin;
    if (n <= capacity) {
      groups.push_back({begin, end});
      return;
    }
    std::sort(order.begin() + begin, order.begin() + end, [&](int a, int b) {
      const Rect& ra = entries[a].first;
      const Rect& rb = entries[b].first;
      float ca = ra.lo(dim_index) + ra.hi(dim_index);
      float cb = rb.lo(dim_index) + rb.hi(dim_index);
      return ca < cb;
    });
    int num_groups = (n + capacity - 1) / capacity;
    int next_dim = (dim_index + 1) % dim;
    if (dim_index + 1 >= dim || num_groups <= 1) {
      // Innermost dimension: emit balanced consecutive groups (balance
      // keeps every group at >= ~capacity/2, satisfying the 40% min fill).
      std::vector<int> sizes = BalancedChunks(n, num_groups);
      int at = begin;
      for (int size : sizes) {
        groups.push_back({at, at + size});
        at += size;
      }
      return;
    }
    // Slabs proportional to the remaining dimensions.
    int slabs = static_cast<int>(std::ceil(
        std::pow(static_cast<double>(num_groups),
                 1.0 / static_cast<double>(dim - dim_index))));
    slabs = std::max(1, std::min(slabs, num_groups));
    std::vector<int> sizes = BalancedChunks(n, slabs);
    int at = begin;
    for (int size : sizes) {
      tile(at, at + size, next_dim);
      at += size;
    }
  };
  tile(0, static_cast<int>(entries.size()), 0);

  // Build the leaf level.
  std::vector<std::unique_ptr<Node>> level;
  for (const Range& range : groups) {
    auto node = std::make_unique<Node>();
    node->level = 0;
    node->entries.reserve(range.end - range.begin);
    for (int i = range.begin; i < range.end; ++i) {
      Entry e;
      e.rect = entries[order[i]].first;
      e.payload = entries[order[i]].second;
      node->entries.push_back(std::move(e));
    }
    level.push_back(std::move(node));
  }

  // Pack upward until a single root remains. Upper levels reuse the same
  // STR tiling over the child bounding rects.
  int current_level = 0;
  while (level.size() > 1) {
    ++current_level;
    std::vector<std::pair<Rect, int>> child_rects;
    child_rects.reserve(level.size());
    for (size_t i = 0; i < level.size(); ++i) {
      child_rects.emplace_back(level[i]->ComputeBoundingRect(dim),
                               static_cast<int>(i));
    }
    std::vector<int> child_order(level.size());
    for (size_t i = 0; i < child_order.size(); ++i) {
      child_order[i] = static_cast<int>(i);
    }
    groups.clear();
    // Reuse `tile` machinery with a fresh order array: simplest is to sort
    // children by dim-0 center and chunk (one STR pass is enough for the
    // modest fan-in of upper levels).
    std::sort(child_order.begin(), child_order.end(), [&](int a, int b) {
      const Rect& ra = child_rects[a].first;
      const Rect& rb = child_rects[b].first;
      return ra.lo(0) + ra.hi(0) < rb.lo(0) + rb.hi(0);
    });
    int n = static_cast<int>(level.size());
    int num_groups = (n + capacity - 1) / capacity;
    std::vector<int> sizes = BalancedChunks(n, num_groups);
    std::vector<std::unique_ptr<Node>> next;
    int at = 0;
    for (int size : sizes) {
      auto node = std::make_unique<Node>();
      node->level = current_level;
      node->entries.reserve(size);
      for (int i = at; i < at + size; ++i) {
        Entry e;
        e.rect = child_rects[child_order[i]].first;
        e.child = std::move(level[child_order[i]]);
        e.child->parent = node.get();
        node->entries.push_back(std::move(e));
      }
      at += size;
      next.push_back(std::move(node));
    }
    level = std::move(next);
  }

  tree.root_ = std::move(level[0]);
  tree.root_->parent = nullptr;
  tree.size_ = static_cast<int64_t>(entries.size());
  return tree;
}

namespace {

void SerializeRect(const Rect& rect, BinaryWriter* writer) {
  writer->PutU8(rect.IsEmpty() ? 1 : 0);
  writer->PutU32(static_cast<uint32_t>(rect.dim()));
  for (int i = 0; i < rect.dim(); ++i) writer->PutFloat(rect.lo(i));
  for (int i = 0; i < rect.dim(); ++i) writer->PutFloat(rect.hi(i));
}

Result<Rect> DeserializeRect(BinaryReader* reader) {
  WALRUS_ASSIGN_OR_RETURN(uint8_t empty, reader->GetU8());
  WALRUS_ASSIGN_OR_RETURN(uint32_t dim, reader->GetU32());
  if (dim > 4096) return Status::Corruption("rect: absurd dimension");
  std::vector<float> lo(dim), hi(dim);
  for (uint32_t i = 0; i < dim; ++i) {
    WALRUS_ASSIGN_OR_RETURN(lo[i], reader->GetFloat());
  }
  for (uint32_t i = 0; i < dim; ++i) {
    WALRUS_ASSIGN_OR_RETURN(hi[i], reader->GetFloat());
  }
  if (empty != 0) return Rect::Empty(static_cast<int>(dim));
  // Untrusted input: reject inverted or NaN bounds with an error instead of
  // tripping Rect::Bounds' programmer-error check.
  for (uint32_t i = 0; i < dim; ++i) {
    if (!(lo[i] <= hi[i])) {
      return Status::Corruption("rect: inverted or NaN bounds");
    }
  }
  return Rect::Bounds(std::move(lo), std::move(hi));
}

}  // namespace

void RStarTree::Serialize(BinaryWriter* writer) const {
  WALRUS_CHECK(writer != nullptr);
  writer->PutU32(0x52535452);  // "RSTR"
  writer->PutU32(static_cast<uint32_t>(dim_));
  writer->PutU32(static_cast<uint32_t>(params_.max_entries));
  writer->PutDouble(params_.reinsert_fraction);
  writer->PutU8(static_cast<uint8_t>(params_.split_policy));
  writer->PutU8(params_.use_forced_reinsert ? 1 : 0);
  writer->PutU64(static_cast<uint64_t>(size_));

  // Pre-order dump.
  std::function<void(const Node*)> dump = [&](const Node* node) {
    writer->PutU32(static_cast<uint32_t>(node->level));
    writer->PutU32(static_cast<uint32_t>(node->entries.size()));
    for (const Entry& e : node->entries) {
      SerializeRect(e.rect, writer);
      if (node->is_leaf()) {
        writer->PutU64(e.payload);
      } else {
        dump(e.child.get());
      }
    }
  };
  dump(root_.get());
}

Result<RStarTree> RStarTree::Deserialize(BinaryReader* reader) {
  WALRUS_CHECK(reader != nullptr);
  WALRUS_ASSIGN_OR_RETURN(uint32_t magic, reader->GetU32());
  if (magic != 0x52535452) return Status::Corruption("rstar: bad magic");
  WALRUS_ASSIGN_OR_RETURN(uint32_t dim, reader->GetU32());
  WALRUS_ASSIGN_OR_RETURN(uint32_t max_entries, reader->GetU32());
  WALRUS_ASSIGN_OR_RETURN(double reinsert_fraction, reader->GetDouble());
  WALRUS_ASSIGN_OR_RETURN(uint8_t split_policy, reader->GetU8());
  WALRUS_ASSIGN_OR_RETURN(uint8_t forced_reinsert, reader->GetU8());
  WALRUS_ASSIGN_OR_RETURN(uint64_t size, reader->GetU64());
  if (dim == 0 || max_entries < 4 || split_policy > 1) {
    return Status::Corruption("rstar: header");
  }

  RStarParams params;
  params.max_entries = static_cast<int>(max_entries);
  params.reinsert_fraction = reinsert_fraction;
  params.split_policy = static_cast<SplitPolicy>(split_policy);
  params.use_forced_reinsert = forced_reinsert != 0;
  RStarTree tree(static_cast<int>(dim), params);

  std::function<Result<std::unique_ptr<Node>>()> load =
      [&]() -> Result<std::unique_ptr<Node>> {
    WALRUS_ASSIGN_OR_RETURN(uint32_t level, reader->GetU32());
    WALRUS_ASSIGN_OR_RETURN(uint32_t count, reader->GetU32());
    if (count > max_entries + 1) return Status::Corruption("rstar: count");
    auto node = std::make_unique<Node>();
    node->level = static_cast<int>(level);
    node->entries.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      Entry e;
      WALRUS_ASSIGN_OR_RETURN(e.rect, DeserializeRect(reader));
      if (level == 0) {
        WALRUS_ASSIGN_OR_RETURN(e.payload, reader->GetU64());
      } else {
        WALRUS_ASSIGN_OR_RETURN(e.child, load());
        if (e.child->level != node->level - 1) {
          return Status::Corruption("rstar: level chain");
        }
        e.child->parent = node.get();
      }
      node->entries.push_back(std::move(e));
    }
    return node;
  };
  WALRUS_ASSIGN_OR_RETURN(tree.root_, load());
  tree.size_ = static_cast<int64_t>(size);
  return tree;
}

}  // namespace walrus
