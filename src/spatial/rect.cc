#include "spatial/rect.h"

#include <algorithm>

#include "common/check.h"
#include "common/simd.h"

namespace walrus {

Rect Rect::Point(const std::vector<float>& point) {
  Rect r;
  r.lo_ = point;
  r.hi_ = point;
  r.empty_ = point.empty();
  return r;
}

Rect Rect::Bounds(std::vector<float> lo, std::vector<float> hi) {
  WALRUS_CHECK_EQ(lo.size(), hi.size());
  for (size_t i = 0; i < lo.size(); ++i) WALRUS_CHECK_LE(lo[i], hi[i]);
  Rect r;
  r.empty_ = lo.empty();
  r.lo_ = std::move(lo);
  r.hi_ = std::move(hi);
  return r;
}

Rect Rect::Empty(int dim) {
  Rect r;
  r.lo_.assign(dim, 0.0f);
  r.hi_.assign(dim, 0.0f);
  r.empty_ = true;
  return r;
}

std::vector<float> Rect::Center() const {
  WALRUS_CHECK(!empty_);
  std::vector<float> c(lo_.size());
  for (size_t i = 0; i < lo_.size(); ++i) c[i] = 0.5f * (lo_[i] + hi_[i]);
  return c;
}

void Rect::ExpandToInclude(const Rect& other) {
  if (other.empty_) return;
  if (empty_) {
    *this = other;
    return;
  }
  WALRUS_DCHECK_EQ(dim(), other.dim());
  for (int i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], other.lo_[i]);
    hi_[i] = std::max(hi_[i], other.hi_[i]);
  }
}

void Rect::ExpandToInclude(const std::vector<float>& point) {
  ExpandToInclude(Rect::Point(point));
}

Rect Rect::Expanded(float epsilon) const {
  WALRUS_CHECK(!empty_);
  Rect r = *this;
  for (int i = 0; i < dim(); ++i) {
    r.lo_[i] -= epsilon;
    r.hi_[i] += epsilon;
  }
  return r;
}

bool Rect::Intersects(const Rect& other) const {
  if (empty_ || other.empty_) return false;
  WALRUS_DCHECK_EQ(dim(), other.dim());
  return simd::Active().rect_intersects(lo_.data(), hi_.data(),
                                        other.lo_.data(), other.hi_.data(),
                                        dim());
}

bool Rect::ExpandedIntersects(float epsilon, const Rect& other) const {
  WALRUS_CHECK(!empty_);
  if (other.empty_) return false;
  WALRUS_DCHECK_EQ(dim(), other.dim());
  return simd::Active().rect_intersects_expanded(
      lo_.data(), hi_.data(), epsilon, other.lo_.data(), other.hi_.data(),
      dim());
}

bool Rect::Contains(const std::vector<float>& point) const {
  return Contains(point.data(), static_cast<int>(point.size()));
}

bool Rect::Contains(const float* point, int n) const {
  if (empty_) return false;
  WALRUS_DCHECK_EQ(dim(), n);
  return simd::Active().rect_contains_point(lo_.data(), hi_.data(), point,
                                            n);
}

bool Rect::ContainsRect(const Rect& other) const {
  if (empty_ || other.empty_) return false;
  for (int i = 0; i < dim(); ++i) {
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  }
  return true;
}

double Rect::Area() const {
  if (empty_) return 0.0;
  double area = 1.0;
  for (int i = 0; i < dim(); ++i) {
    area *= static_cast<double>(hi_[i]) - lo_[i];
  }
  return area;
}

double Rect::Margin() const {
  if (empty_) return 0.0;
  double margin = 0.0;
  for (int i = 0; i < dim(); ++i) {
    margin += static_cast<double>(hi_[i]) - lo_[i];
  }
  return margin;
}

double Rect::OverlapArea(const Rect& other) const {
  if (empty_ || other.empty_) return 0.0;
  double area = 1.0;
  for (int i = 0; i < dim(); ++i) {
    double lo = std::max(lo_[i], other.lo_[i]);
    double hi = std::min(hi_[i], other.hi_[i]);
    if (hi <= lo) return 0.0;
    area *= hi - lo;
  }
  return area;
}

double Rect::Enlargement(const Rect& other) const {
  Rect u = Union(*this, other);
  return u.Area() - Area();
}

Rect Rect::Union(const Rect& a, const Rect& b) {
  Rect u = a;
  u.ExpandToInclude(b);
  return u;
}

double Rect::MinSquaredDistance(const std::vector<float>& point) const {
  return MinSquaredDistance(point.data(), static_cast<int>(point.size()));
}

double Rect::MinSquaredDistance(const float* point, int n) const {
  WALRUS_CHECK(!empty_);
  WALRUS_DCHECK_EQ(dim(), n);
  return simd::Active().min_squared_distance(lo_.data(), hi_.data(), point,
                                             n);
}

}  // namespace walrus
