#ifndef WALRUS_SPATIAL_RECT_H_
#define WALRUS_SPATIAL_RECT_H_

#include <vector>

#include "common/logging.h"

namespace walrus {

/// Axis-aligned hyper-rectangle with runtime dimensionality, the bounding
/// shape stored in the R*-tree. Region signatures are indexed either as
/// degenerate point rectangles (centroid signatures) or as proper bounding
/// boxes of all window signatures in a cluster (paper Definition 4.1).
class Rect {
 public:
  Rect() = default;

  /// Degenerate rectangle covering exactly `point`.
  static Rect Point(const std::vector<float>& point);

  /// Rectangle from explicit bounds; requires lo[i] <= hi[i] for all i.
  static Rect Bounds(std::vector<float> lo, std::vector<float> hi);

  /// Empty rectangle placeholder of the given dimension, ready to be
  /// extended with ExpandToInclude (lo=+inf, hi=-inf conceptually; here a
  /// flag keeps it explicit).
  static Rect Empty(int dim);

  int dim() const { return static_cast<int>(lo_.size()); }
  bool IsEmpty() const { return empty_; }
  const std::vector<float>& lo() const { return lo_; }
  const std::vector<float>& hi() const { return hi_; }
  float lo(int i) const { return lo_[i]; }
  float hi(int i) const { return hi_[i]; }

  /// Center point (undefined on empty rects; checked).
  std::vector<float> Center() const;

  /// Grows this rect minimally to contain `other` (or a point).
  void ExpandToInclude(const Rect& other);
  void ExpandToInclude(const std::vector<float>& point);

  /// Returns a copy grown by `epsilon` on every side (Minkowski expansion;
  /// this is how Definition 4.1's epsilon-envelope probe is executed).
  Rect Expanded(float epsilon) const;

  /// True if the rectangles share at least one point (closed bounds).
  bool Intersects(const Rect& other) const;

  /// Equivalent to `Expanded(epsilon).Intersects(other)` without
  /// materializing the expanded copy (the hot epsilon-containment test of
  /// Definition 4.1; executed by a fused kernel, see common/simd.h).
  bool ExpandedIntersects(float epsilon, const Rect& other) const;

  /// True if `point` lies inside (closed bounds).
  bool Contains(const std::vector<float>& point) const;

  /// Pointer overload for packed/SoA callers (`point` holds `n` floats).
  bool Contains(const float* point, int n) const;

  /// True if `other` lies fully inside this rect.
  bool ContainsRect(const Rect& other) const;

  /// Product of side lengths. Degenerate sides contribute factor 0.
  double Area() const;

  /// Sum of side lengths (the R* split margin objective).
  double Margin() const;

  /// Area of the intersection with `other` (0 when disjoint).
  double OverlapArea(const Rect& other) const;

  /// Area of the minimal rect containing both minus this rect's area.
  double Enlargement(const Rect& other) const;

  /// Minimal rect containing both inputs.
  static Rect Union(const Rect& a, const Rect& b);

  /// Squared minimum distance from `point` to this rect (0 when inside).
  double MinSquaredDistance(const std::vector<float>& point) const;

  /// Pointer overload (`point` holds `n` floats): packed-store and
  /// tree-scan callers pass plane pointers directly instead of
  /// materializing a temporary vector per node visit.
  double MinSquaredDistance(const float* point, int n) const;

  bool operator==(const Rect& other) const {
    return empty_ == other.empty_ && lo_ == other.lo_ && hi_ == other.hi_;
  }

 private:
  bool empty_ = true;
  std::vector<float> lo_;
  std::vector<float> hi_;
};

}  // namespace walrus

#endif  // WALRUS_SPATIAL_RECT_H_
