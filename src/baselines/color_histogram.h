#ifndef WALRUS_BASELINES_COLOR_HISTOGRAM_H_
#define WALRUS_BASELINES_COLOR_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "image/image.h"

namespace walrus {

/// QBIC-style global color-histogram retriever [Nib93]: the classical
/// baseline whose failure on translated/scaled objects with differing
/// backgrounds motivates WALRUS (paper section 1.1). Quantizes RGB into
/// bins_per_channel^3 buckets and compares normalized histograms.
struct ColorHistogramParams {
  int bins_per_channel = 4;
  /// Distance: true = L1 (histogram intersection complement), false = L2.
  bool use_l1 = true;
};

struct HistogramMatch {
  uint64_t image_id = 0;
  double distance = 0.0;
};

class ColorHistogramRetriever {
 public:
  explicit ColorHistogramRetriever(
      ColorHistogramParams params = ColorHistogramParams());

  Status AddImage(uint64_t image_id, const ImageF& image);
  size_t size() const { return entries_.size(); }

  Result<std::vector<HistogramMatch>> Query(const ImageF& query,
                                            int top_k) const;

  /// Normalized histogram of an RGB image (helper, exposed for tests).
  Result<std::vector<float>> ComputeHistogram(const ImageF& image) const;

 private:
  struct Entry {
    uint64_t image_id = 0;
    std::vector<float> histogram;
  };

  ColorHistogramParams params_;
  std::vector<Entry> entries_;
};

}  // namespace walrus

#endif  // WALRUS_BASELINES_COLOR_HISTOGRAM_H_
