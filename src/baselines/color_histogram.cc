#include "baselines/color_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "image/color.h"

namespace walrus {

ColorHistogramRetriever::ColorHistogramRetriever(ColorHistogramParams params)
    : params_(params) {
  WALRUS_CHECK(params.bins_per_channel >= 2 && params.bins_per_channel <= 32);
}

Result<std::vector<float>> ColorHistogramRetriever::ComputeHistogram(
    const ImageF& image) const {
  if (image.empty()) return Status::InvalidArgument("empty image");
  WALRUS_ASSIGN_OR_RETURN(ImageF rgb,
                          ConvertColorSpace(image, ColorSpace::kRGB));
  int bins = params_.bins_per_channel;
  std::vector<float> histogram(static_cast<size_t>(bins) * bins * bins, 0.0f);
  for (int y = 0; y < rgb.height(); ++y) {
    for (int x = 0; x < rgb.width(); ++x) {
      int r = Clamp(static_cast<int>(rgb.At(0, x, y) * bins), 0, bins - 1);
      int g = Clamp(static_cast<int>(rgb.At(1, x, y) * bins), 0, bins - 1);
      int b = Clamp(static_cast<int>(rgb.At(2, x, y) * bins), 0, bins - 1);
      histogram[(static_cast<size_t>(r) * bins + g) * bins + b] += 1.0f;
    }
  }
  float total = static_cast<float>(rgb.PixelCount());
  for (float& v : histogram) v /= total;
  return histogram;
}

Status ColorHistogramRetriever::AddImage(uint64_t image_id,
                                         const ImageF& image) {
  WALRUS_ASSIGN_OR_RETURN(std::vector<float> histogram,
                          ComputeHistogram(image));
  entries_.push_back({image_id, std::move(histogram)});
  return Status::OK();
}

Result<std::vector<HistogramMatch>> ColorHistogramRetriever::Query(
    const ImageF& query, int top_k) const {
  WALRUS_ASSIGN_OR_RETURN(std::vector<float> q, ComputeHistogram(query));
  std::vector<HistogramMatch> matches;
  matches.reserve(entries_.size());
  for (const Entry& e : entries_) {
    double d = params_.use_l1 ? L1Distance(q, e.histogram)
                              : L2Distance(q, e.histogram);
    matches.push_back({e.image_id, d});
  }
  std::sort(matches.begin(), matches.end(),
            [](const HistogramMatch& a, const HistogramMatch& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.image_id < b.image_id;
            });
  if (top_k > 0 && static_cast<int>(matches.size()) > top_k) {
    matches.resize(top_k);
  }
  return matches;
}

}  // namespace walrus
