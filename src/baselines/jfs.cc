#include "baselines/jfs.h"

#include <algorithm>

#include "common/check.h"
#include "image/color.h"
#include "image/transform.h"
#include "wavelet/haar2d.h"

namespace walrus {

JfsRetriever::JfsRetriever(JfsParams params) : params_(params) {
  WALRUS_CHECK_GE(params.rescale, 8);
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(params.rescale)));
  WALRUS_CHECK_GE(params.keep_coefficients, 1);
}

Result<JfsRetriever::Entry> JfsRetriever::ComputeEntry(
    const ImageF& image) const {
  if (image.empty()) return Status::InvalidArgument("empty image");
  ImageF scaled = Resize(image, params_.rescale, params_.rescale,
                         ResizeFilter::kBilinear);
  WALRUS_ASSIGN_OR_RETURN(ImageF converted,
                          ConvertColorSpace(scaled, params_.color_space));
  Entry entry;
  int n = params_.rescale;
  for (int c = 0; c < 3; ++c) {
    SquareMatrix plane(n);
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) plane.At(x, y) = converted.At(c, x, y);
    }
    SquareMatrix transform = HaarStandard2D(plane);
    entry.channels[c] =
        TruncateTransform(transform, params_.keep_coefficients);
  }
  return entry;
}

Status JfsRetriever::AddImage(uint64_t image_id, const ImageF& image) {
  WALRUS_ASSIGN_OR_RETURN(Entry entry, ComputeEntry(image));
  entry.image_id = image_id;
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Result<std::vector<JfsMatch>> JfsRetriever::Query(const ImageF& query,
                                                  int top_k) const {
  WALRUS_ASSIGN_OR_RETURN(Entry q, ComputeEntry(query));
  std::vector<JfsMatch> matches;
  matches.reserve(entries_.size());
  for (const Entry& e : entries_) {
    double score = 0.0;
    for (int c = 0; c < 3; ++c) {
      score += JfsScore(q.channels[c], e.channels[c], params_.rescale,
                        params_.bin_weights[c], params_.average_weights[c]);
    }
    matches.push_back({e.image_id, score});
  }
  std::sort(matches.begin(), matches.end(),
            [](const JfsMatch& a, const JfsMatch& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.image_id < b.image_id;
            });
  if (top_k > 0 && static_cast<int>(matches.size()) > top_k) {
    matches.resize(top_k);
  }
  return matches;
}

}  // namespace walrus
