#include "baselines/wbiis.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "image/color.h"
#include "image/transform.h"
#include "wavelet/daubechies.h"

namespace walrus {

WbiisRetriever::WbiisRetriever(WbiisParams params) : params_(params) {
  WALRUS_CHECK_GE(params.rescale, 64);
  WALRUS_CHECK(params.rescale % 32 == 0);
}

Result<WbiisRetriever::Feature> WbiisRetriever::ComputeFeature(
    const ImageF& image) const {
  if (image.empty()) return Status::InvalidArgument("empty image");
  ImageF scaled = Resize(image, params_.rescale, params_.rescale,
                         ResizeFilter::kBilinear);
  WALRUS_ASSIGN_OR_RETURN(ImageF converted,
                          ConvertColorSpace(scaled, params_.color_space));

  Feature feature;
  int n = params_.rescale;
  for (int c = 0; c < 3; ++c) {
    SquareMatrix plane(n);
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) plane.At(x, y) = converted.At(c, x, y);
    }
    SquareMatrix t4 = Daub4Transform2D(plane, 4);
    SquareMatrix t5 = Daub4Transform2D(plane, 5);

    // 16x16 corner of the 4-level transform.
    for (int y = 0; y < 16; ++y) {
      for (int x = 0; x < 16; ++x) feature.corner4.push_back(t4.At(x, y));
    }
    // 8x8 corner of the 5-level transform + its standard deviation.
    double sum = 0.0;
    double sum2 = 0.0;
    int ll = n >> 5;  // low-low band side after 5 levels (4 for n=128)
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) feature.corner5.push_back(t5.At(x, y));
    }
    for (int y = 0; y < ll; ++y) {
      for (int x = 0; x < ll; ++x) {
        double v = t5.At(x, y);
        sum += v;
        sum2 += v * v;
      }
    }
    double count = static_cast<double>(ll) * ll;
    double mean = sum / count;
    double var = sum2 / count - mean * mean;
    feature.sigma[c] = var > 0.0 ? static_cast<float>(std::sqrt(var)) : 0.0f;
  }
  return feature;
}

Status WbiisRetriever::AddImage(uint64_t image_id, const ImageF& image) {
  WALRUS_ASSIGN_OR_RETURN(Feature feature, ComputeFeature(image));
  feature.image_id = image_id;
  features_.push_back(std::move(feature));
  return Status::OK();
}

double WbiisRetriever::CornerDistance(const std::vector<float>& a,
                                      const std::vector<float>& b,
                                      int side) const {
  WALRUS_DCHECK_EQ(a.size(), b.size());
  int per_channel = side * side;
  int half = side / 2;
  double total = 0.0;
  for (int c = 0; c < 3; ++c) {
    double channel_sum = 0.0;
    const float* pa = a.data() + c * per_channel;
    const float* pb = b.data() + c * per_channel;
    for (int y = 0; y < side; ++y) {
      for (int x = 0; x < side; ++x) {
        double d = static_cast<double>(pa[y * side + x]) - pb[y * side + x];
        double w = (x < half && y < half) ? params_.lowband_weight : 1.0;
        channel_sum += w * d * d;
      }
    }
    total += params_.channel_weights[c] * channel_sum;
  }
  return std::sqrt(total);
}

Result<std::vector<BaselineMatch>> WbiisRetriever::Query(const ImageF& query,
                                                         int top_k) const {
  WALRUS_ASSIGN_OR_RETURN(Feature q, ComputeFeature(query));

  // Step 1: variance filter.
  std::vector<const Feature*> survivors;
  survivors.reserve(features_.size());
  for (const Feature& f : features_) {
    bool pass = false;
    for (int c = 0; c < 3 && !pass; ++c) {
      float band = params_.variance_band * (q.sigma[c] + 1e-6f);
      if (std::fabs(f.sigma[c] - q.sigma[c]) < band) pass = true;
    }
    if (pass) survivors.push_back(&f);
  }
  // Degenerate queries (uniform images) may filter everything out; fall
  // back to scoring the whole database.
  if (survivors.empty()) {
    for (const Feature& f : features_) survivors.push_back(&f);
  }

  // Step 2: coarse ranking on the 5-level corner.
  std::vector<std::pair<double, const Feature*>> coarse;
  coarse.reserve(survivors.size());
  for (const Feature* f : survivors) {
    coarse.emplace_back(CornerDistance(q.corner5, f->corner5, 8), f);
  }
  std::sort(coarse.begin(), coarse.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t keep = std::max<size_t>(
      static_cast<size_t>(top_k),
      static_cast<size_t>(params_.refine_fraction * coarse.size()));
  keep = std::min(keep, coarse.size());

  // Step 3: final ranking on the 4-level corner.
  std::vector<BaselineMatch> matches;
  matches.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    const Feature* f = coarse[i].second;
    matches.push_back({f->image_id, CornerDistance(q.corner4, f->corner4, 16)});
  }
  std::sort(matches.begin(), matches.end(),
            [](const BaselineMatch& a, const BaselineMatch& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.image_id < b.image_id;
            });
  if (top_k > 0 && static_cast<int>(matches.size()) > top_k) {
    matches.resize(top_k);
  }
  return matches;
}

}  // namespace walrus
