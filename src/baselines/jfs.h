#ifndef WALRUS_BASELINES_JFS_H_
#define WALRUS_BASELINES_JFS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "image/image.h"
#include "wavelet/quantize.h"

namespace walrus {

/// "Fast multiresolution image querying" baseline [JFS95]: whole-image
/// Haar signature truncated to the largest-magnitude coefficients with only
/// their signs retained, scored with per-frequency-bin weights. Another
/// single-signature system WALRUS's region model is contrasted with.
struct JfsParams {
  int rescale = 128;
  ColorSpace color_space = ColorSpace::kYIQ;  // the paper's best space
  /// Coefficients kept per channel (paper: 40..60 for their data).
  int keep_coefficients = 60;
  /// Weight of the average-intensity term per channel.
  float average_weights[3] = {5.0f, 3.0f, 3.0f};
  /// Bin weights w[min(max(i,j),5)] per channel (luminance row is the
  /// paper's scanned-query table, chroma reuse it scaled).
  float bin_weights[3][6] = {
      {0.891f, 0.581f, 0.488f, 0.497f, 0.430f, 0.402f},
      {0.624f, 0.406f, 0.342f, 0.348f, 0.301f, 0.281f},
      {0.624f, 0.406f, 0.342f, 0.348f, 0.301f, 0.281f},
  };
};

struct JfsMatch {
  uint64_t image_id = 0;
  double score = 0.0;  // lower = more similar
};

class JfsRetriever {
 public:
  explicit JfsRetriever(JfsParams params = JfsParams());

  Status AddImage(uint64_t image_id, const ImageF& image);
  size_t size() const { return entries_.size(); }

  /// Scores every indexed image and returns the best `top_k` (ascending
  /// score).
  Result<std::vector<JfsMatch>> Query(const ImageF& query, int top_k) const;

 private:
  struct Entry {
    uint64_t image_id = 0;
    TruncatedSignature channels[3];
  };

  Result<Entry> ComputeEntry(const ImageF& image) const;

  JfsParams params_;
  std::vector<Entry> entries_;
};

}  // namespace walrus

#endif  // WALRUS_BASELINES_JFS_H_
