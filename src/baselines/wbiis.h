#ifndef WALRUS_BASELINES_WBIIS_H_
#define WALRUS_BASELINES_WBIIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "image/image.h"

namespace walrus {

/// WBIIS-style whole-image retriever [WWFW98], the system the paper
/// compares against in Figures 7/8. Each image is rescaled to a fixed
/// square, converted to the working color space, and transformed with
/// 4- and 5-level Daubechies-4 wavelets per channel. Search runs in three
/// steps: (1) crude filter on the standard deviation of the 5-level
/// low-low band, (2) weighted distance on the 5-level 8x8 corner,
/// (3) final ranking by weighted distance on the 4-level 16x16 corner.
struct WbiisParams {
  int rescale = 128;
  ColorSpace color_space = ColorSpace::kYCC;
  /// Step 1 keeps target t when |sigma_t - sigma_q| < variance_band *
  /// sigma_q (per channel, any channel passing keeps the image).
  float variance_band = 0.5f;
  /// Step 2 keeps this fraction of the step-1 survivors for final ranking.
  float refine_fraction = 0.3f;
  /// Channel weights in the distance (luminance first).
  float channel_weights[3] = {1.0f, 0.7f, 0.7f};
  /// Extra weight on the low-low band vs detail subbands.
  float lowband_weight = 2.0f;
};

/// One ranked result (smaller distance = better).
struct BaselineMatch {
  uint64_t image_id = 0;
  double distance = 0.0;
};

class WbiisRetriever {
 public:
  explicit WbiisRetriever(WbiisParams params = WbiisParams());

  /// Indexes `image` (any color space; converted internally).
  Status AddImage(uint64_t image_id, const ImageF& image);

  size_t size() const { return features_.size(); }

  /// Three-step search; returns up to `top_k` images by ascending distance.
  Result<std::vector<BaselineMatch>> Query(const ImageF& query,
                                           int top_k) const;

 private:
  struct Feature {
    uint64_t image_id = 0;
    /// Per channel: stddev of the 5-level low-low band.
    float sigma[3] = {0, 0, 0};
    /// Per channel 16x16 corner of the 4-level transform (flattened).
    std::vector<float> corner4;
    /// Per channel 8x8 corner of the 5-level transform (flattened).
    std::vector<float> corner5;
  };

  Result<Feature> ComputeFeature(const ImageF& image) const;
  double CornerDistance(const std::vector<float>& a,
                        const std::vector<float>& b, int side) const;

  WbiisParams params_;
  std::vector<Feature> features_;
};

}  // namespace walrus

#endif  // WALRUS_BASELINES_WBIIS_H_
