#include "storage/disk_rstar.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>
#include <unordered_set>

#include "common/check.h"
#include "common/metrics.h"
#include "common/serialize.h"
#include "common/simd.h"
#include "common/status.h"
#include "spatial/hilbert.h"

namespace walrus {
namespace {

/// Paged-backend IO counters. pages_read counts node fetches (cache or
/// disk); hits/misses split them by whether the LRU page cache served the
/// request.
struct DiskRStarMetrics {
  Counter* range_probes;
  Counter* knn_probes;
  Counter* batch_probes;
  Counter* pages_read;
  Counter* cache_hits;
  Counter* cache_misses;

  static const DiskRStarMetrics& Get() {
    static const DiskRStarMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      DiskRStarMetrics m;
      m.range_probes = registry.GetCounter("walrus.disk_rstar.range_probes");
      m.knn_probes = registry.GetCounter("walrus.disk_rstar.knn_probes");
      m.batch_probes = registry.GetCounter("walrus.disk_rstar.batch_probes");
      m.pages_read = registry.GetCounter("walrus.disk_rstar.pages_read");
      m.cache_hits = registry.GetCounter("walrus.disk_rstar.cache_hits");
      m.cache_misses = registry.GetCounter("walrus.disk_rstar.cache_misses");
      return m;
    }();
    return metrics;
  }
};

constexpr uint32_t kMetaMagic = 0x44525354;  // "DRST"
constexpr size_t kNodeHeaderBytes = 8;

size_t EntryBytes(int dim) { return static_cast<size_t>(dim) * 8 + 8; }

int CapacityFor(uint32_t page_size, int dim) {
  // The page file reserves its CRC-32 trailer at the end of every page.
  return static_cast<int>(
      (page_size - kNodeHeaderBytes - PageFile::kChecksumBytes) /
      EntryBytes(dim));
}

void PutU16At(std::vector<uint8_t>* page, size_t pos, uint16_t v) {
  (*page)[pos] = static_cast<uint8_t>(v);
  (*page)[pos + 1] = static_cast<uint8_t>(v >> 8);
}

void PutU64At(std::vector<uint8_t>* page, size_t pos, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*page)[pos + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void PutF32At(std::vector<uint8_t>* page, size_t pos, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  for (int i = 0; i < 4; ++i) {
    (*page)[pos + i] = static_cast<uint8_t>(bits >> (8 * i));
  }
}

/// Serializes one node into a fresh page image.
std::vector<uint8_t> EncodeNode(uint32_t page_size, int dim, bool is_leaf,
                                const std::vector<Rect>& rects,
                                const std::vector<uint64_t>& values) {
  std::vector<uint8_t> page(page_size, 0);
  page[0] = is_leaf ? 1 : 0;
  PutU16At(&page, 2, static_cast<uint16_t>(rects.size()));
  size_t at = kNodeHeaderBytes;
  for (size_t i = 0; i < rects.size(); ++i) {
    for (int d = 0; d < dim; ++d) {
      PutF32At(&page, at, rects[i].lo(d));
      at += 4;
    }
    for (int d = 0; d < dim; ++d) {
      PutF32At(&page, at, rects[i].hi(d));
      at += 4;
    }
    PutU64At(&page, at, values[i]);
    at += 8;
  }
  return page;
}

}  // namespace

int DiskRStarTree::NodeCapacity() const {
  return CapacityFor(page_size_, dim_);
}

Result<DiskRStarTree> DiskRStarTree::Build(
    const std::string& path, int dim,
    std::vector<std::pair<Rect, uint64_t>> entries, uint32_t page_size) {
  if (dim < 1) return Status::InvalidArgument("disk rstar: dim must be >= 1");
  int capacity = CapacityFor(page_size, dim);
  if (capacity < 2) {
    return Status::InvalidArgument(
        "disk rstar: page too small for dimension " + std::to_string(dim));
  }
  WALRUS_ASSIGN_OR_RETURN(PageFile file, PageFile::Create(path, page_size));

  // STR order the leaf entries (same recursive tiling as
  // RStarTree::BulkLoad, specialized to produce a flat order).
  std::vector<int> order(entries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::function<void(int, int, int)> tile = [&](int begin, int end,
                                                int dim_index) {
    int n = end - begin;
    if (n <= capacity) return;
    std::sort(order.begin() + begin, order.begin() + end, [&](int a, int b) {
      const Rect& ra = entries[a].first;
      const Rect& rb = entries[b].first;
      return ra.lo(dim_index) + ra.hi(dim_index) <
             rb.lo(dim_index) + rb.hi(dim_index);
    });
    int num_groups = (n + capacity - 1) / capacity;
    int slabs = static_cast<int>(std::ceil(
        std::pow(static_cast<double>(num_groups),
                 1.0 / static_cast<double>(std::max(1, dim - dim_index)))));
    slabs = std::max(1, std::min(slabs, num_groups));
    if (dim_index + 1 >= dim || slabs <= 1) return;  // sorted run is enough
    int base = n / slabs;
    int extra = n % slabs;
    int at = begin;
    for (int s = 0; s < slabs; ++s) {
      int size = base + (s < extra ? 1 : 0);
      tile(at, at + size, dim_index + 1);
      at += size;
    }
  };
  if (!entries.empty()) {
    tile(0, static_cast<int>(entries.size()), 0);
  }

  // Write the leaf level.
  struct Pending {
    Rect rect;
    uint32_t page;
  };
  std::vector<Pending> level;
  for (size_t begin = 0; begin < entries.size(); begin += capacity) {
    size_t end = std::min(entries.size(), begin + capacity);
    std::vector<Rect> rects;
    std::vector<uint64_t> values;
    Rect bounds = Rect::Empty(dim);
    for (size_t i = begin; i < end; ++i) {
      rects.push_back(entries[order[i]].first);
      values.push_back(entries[order[i]].second);
      bounds.ExpandToInclude(entries[order[i]].first);
    }
    WALRUS_ASSIGN_OR_RETURN(uint32_t page_id, file.AllocatePage());
    WALRUS_RETURN_IF_ERROR(file.WritePage(
        page_id, EncodeNode(page_size, dim, /*is_leaf=*/true, rects, values)));
    level.push_back({bounds, page_id});
  }
  int height = level.empty() ? 0 : 1;

  // Pack upper levels until one root remains.
  while (level.size() > 1) {
    ++height;
    // Order parents by the dim-0 center of their child rects.
    std::vector<int> parent_order(level.size());
    for (size_t i = 0; i < parent_order.size(); ++i) {
      parent_order[i] = static_cast<int>(i);
    }
    std::sort(parent_order.begin(), parent_order.end(), [&](int a, int b) {
      return level[a].rect.lo(0) + level[a].rect.hi(0) <
             level[b].rect.lo(0) + level[b].rect.hi(0);
    });
    std::vector<Pending> next;
    for (size_t begin = 0; begin < level.size(); begin += capacity) {
      size_t end = std::min(level.size(), begin + capacity);
      std::vector<Rect> rects;
      std::vector<uint64_t> values;
      Rect bounds = Rect::Empty(dim);
      for (size_t i = begin; i < end; ++i) {
        const Pending& child = level[parent_order[i]];
        rects.push_back(child.rect);
        values.push_back(child.page);
        bounds.ExpandToInclude(child.rect);
      }
      WALRUS_ASSIGN_OR_RETURN(uint32_t page_id, file.AllocatePage());
      WALRUS_RETURN_IF_ERROR(file.WritePage(
          page_id,
          EncodeNode(page_size, dim, /*is_leaf=*/false, rects, values)));
      next.push_back({bounds, page_id});
    }
    level = std::move(next);
  }

  // Metadata blob last (its head page = page_count - 1, like the catalog).
  BinaryWriter meta;
  meta.PutU32(kMetaMagic);
  meta.PutU32(static_cast<uint32_t>(dim));
  meta.PutU64(static_cast<uint64_t>(entries.size()));
  meta.PutU32(static_cast<uint32_t>(height));
  meta.PutU32(level.empty() ? 0 : level[0].page);
  WALRUS_ASSIGN_OR_RETURN(BlobRef meta_ref, file.WriteBlob(meta.buffer()));
  (void)meta_ref;
  WALRUS_RETURN_IF_ERROR(file.Sync());

  DiskRStarTree tree(std::move(file));
  tree.dim_ = dim;
  tree.size_ = static_cast<int64_t>(entries.size());
  tree.height_ = height;
  tree.root_page_ = level.empty() ? 0 : level[0].page;
  return tree;
}

Result<DiskRStarTree> DiskRStarTree::Open(const std::string& path) {
  WALRUS_ASSIGN_OR_RETURN(PageFile file, PageFile::Open(path));
  if (file.page_count() < 2) {
    return Status::Corruption("disk rstar: no metadata page");
  }
  WALRUS_ASSIGN_OR_RETURN(
      std::vector<uint8_t> meta_bytes,
      file.ReadBlob(BlobRef{file.page_count() - 1, 24}));
  BinaryReader meta(meta_bytes);
  WALRUS_ASSIGN_OR_RETURN(uint32_t magic, meta.GetU32());
  if (magic != kMetaMagic) return Status::Corruption("disk rstar: magic");
  WALRUS_ASSIGN_OR_RETURN(uint32_t dim, meta.GetU32());
  WALRUS_ASSIGN_OR_RETURN(uint64_t size, meta.GetU64());
  WALRUS_ASSIGN_OR_RETURN(uint32_t height, meta.GetU32());
  WALRUS_ASSIGN_OR_RETURN(uint32_t root_page, meta.GetU32());
  if (dim == 0 || dim > 4096) return Status::Corruption("disk rstar: dim");
  if (CapacityFor(file.page_size(), static_cast<int>(dim)) < 2) {
    return Status::Corruption("disk rstar: page/dim mismatch");
  }
  DiskRStarTree tree(std::move(file));
  tree.dim_ = static_cast<int>(dim);
  tree.size_ = static_cast<int64_t>(size);
  tree.height_ = static_cast<int>(height);
  tree.root_page_ = root_page;
  return tree;
}

Result<DiskRStarTree::NodeRef> DiskRStarTree::ReadNode(
    uint32_t page_id) const {
  std::vector<uint8_t> page;
  {
    MutexLock lock(io_mutex_);
    int64_t hits_before = file_.cache_hits();
    WALRUS_ASSIGN_OR_RETURN(page, file_.ReadPage(page_id));
    pages_read_.fetch_add(1, std::memory_order_relaxed);
    const DiskRStarMetrics& metrics = DiskRStarMetrics::Get();
    metrics.pages_read->Increment();
    if (file_.cache_hits() > hits_before) {
      metrics.cache_hits->Increment();
    } else {
      metrics.cache_misses->Increment();
    }
  }
  NodeRef node;
  node.is_leaf = page[0] != 0;
  uint16_t count = static_cast<uint16_t>(page[2]) |
                   static_cast<uint16_t>(page[3]) << 8;
  if (count > CapacityFor(page_size_, dim_)) {
    return Status::Corruption("disk rstar: node overfull");
  }
  node.count = count;
  // Transpose the entry-major page into dimension-major SoA planes as we
  // decode: plane d of lo/hi holds bound d of all entries contiguously.
  node.lo.resize(static_cast<size_t>(dim_) * count);
  node.hi.resize(static_cast<size_t>(dim_) * count);
  node.values.reserve(count);
  size_t at = kNodeHeaderBytes;
  const auto read_f32 = [&page](size_t pos) {
    uint32_t bits = 0;
    for (int b = 0; b < 4; ++b) {
      bits |= static_cast<uint32_t>(page[pos + b]) << (8 * b);
    }
    float value;
    std::memcpy(&value, &bits, 4);
    return value;
  };
  for (uint16_t i = 0; i < count; ++i) {
    for (int d = 0; d < dim_; ++d) {
      node.lo[static_cast<size_t>(d) * count + i] = read_f32(at);
      at += 4;
    }
    for (int d = 0; d < dim_; ++d) {
      node.hi[static_cast<size_t>(d) * count + i] = read_f32(at);
      at += 4;
    }
    for (int d = 0; d < dim_; ++d) {
      if (!(node.lo[static_cast<size_t>(d) * count + i] <=
            node.hi[static_cast<size_t>(d) * count + i])) {
        return Status::Corruption("disk rstar: inverted rect");
      }
    }
    uint64_t value = 0;
    for (int b = 0; b < 8; ++b) {
      value |= static_cast<uint64_t>(page[at + b]) << (8 * b);
    }
    at += 8;
    node.values.push_back(value);
  }
  return node;
}

Rect DiskRStarTree::NodeRef::RectAt(int i, int dim) const {
  std::vector<float> rect_lo(dim), rect_hi(dim);
  for (int d = 0; d < dim; ++d) {
    rect_lo[d] = lo[static_cast<size_t>(d) * count + i];
    rect_hi[d] = hi[static_cast<size_t>(d) * count + i];
  }
  return Rect::Bounds(std::move(rect_lo), std::move(rect_hi));
}

Status DiskRStarTree::Validate() const {
  {
    MutexLock lock(io_mutex_);
    WALRUS_RETURN_IF_ERROR(file_.ValidateChecksums());
  }
  if (size_ == 0) {
    if (height_ != 0) {
      return Status::Internal("disk rstar: empty tree with height " +
                              std::to_string(height_));
    }
    return Status::OK();
  }
  if (height_ < 1) {
    return Status::Internal("disk rstar: nonempty tree with height " +
                            std::to_string(height_));
  }

  struct Item {
    uint32_t page;
    int depth;  // root is depth 1; leaves must sit at depth == height_
    Rect expected;
    bool has_expected;
  };
  std::vector<Item> stack;
  stack.push_back({root_page_, 1, Rect::Empty(dim_), false});
  std::unordered_set<uint32_t> visited;
  int64_t leaf_entries = 0;
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    if (item.page == 0 || item.page >= page_count_) {
      return Status::Internal("disk rstar: child page id " +
                              std::to_string(item.page) + " out of range");
    }
    if (!visited.insert(item.page).second) {
      return Status::Internal("disk rstar: page " + std::to_string(item.page) +
                              " reachable twice (cycle or shared child)");
    }
    WALRUS_ASSIGN_OR_RETURN(NodeRef node, ReadNode(item.page));
    if (node.count == 0) {
      return Status::Internal("disk rstar: empty node at page " +
                              std::to_string(item.page));
    }
    Rect bounds = Rect::Empty(dim_);
    for (int i = 0; i < node.count; ++i) {
      bounds.ExpandToInclude(node.RectAt(i, dim_));
    }
    if (item.has_expected && !(bounds == item.expected)) {
      return Status::Internal(
          "disk rstar: stored parent rect differs from child bounds union at "
          "page " +
          std::to_string(item.page));
    }
    if (node.is_leaf) {
      if (item.depth != height_) {
        return Status::Internal(
            "disk rstar: leaf at depth " + std::to_string(item.depth) +
            ", tree height " + std::to_string(height_));
      }
      leaf_entries += node.count;
      continue;
    }
    if (item.depth >= height_) {
      return Status::Internal("disk rstar: internal node below leaf level");
    }
    for (int i = 0; i < node.count; ++i) {
      stack.push_back({static_cast<uint32_t>(node.values[i]), item.depth + 1,
                       node.RectAt(i, dim_), true});
    }
  }
  if (leaf_entries != size_) {
    return Status::Internal("disk rstar: leaf entry count " +
                            std::to_string(leaf_entries) +
                            " != recorded size " + std::to_string(size_));
  }
  return Status::OK();
}

Status DiskRStarTree::RangeSearchVisit(
    const Rect& query,
    const std::function<bool(const Rect&, uint64_t)>& visitor) const {
  WALRUS_CHECK_EQ(query.dim(), dim_);
  DiskRStarMetrics::Get().range_probes->Increment();
  if (size_ == 0) return Status::OK();
  const simd::KernelTable& kern = simd::Active();
  std::vector<uint32_t> stack = {root_page_};
  std::vector<uint64_t> mask;
  while (!stack.empty()) {
    uint32_t page_id = stack.back();
    stack.pop_back();
    WALRUS_ASSIGN_OR_RETURN(NodeRef node, ReadNode(page_id));
    // The decoded node is already SoA: filter the whole node with one
    // batch kernel call and walk the hit bits.
    const int words = (node.count + 63) / 64;
    mask.resize(words);
    kern.batch_intersects(node.lo_planes(), node.hi_planes(), node.count,
                          dim_, node.count, query.lo().data(),
                          query.hi().data(), mask.data());
    for (int w = 0; w < words; ++w) {
      uint64_t bits = mask[w];
      while (bits != 0) {
        const int i = w * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        if (node.is_leaf) {
          if (!visitor(node.RectAt(i, dim_), node.values[i])) {
            return Status::OK();
          }
        } else {
          stack.push_back(static_cast<uint32_t>(node.values[i]));
        }
      }
    }
  }
  return Status::OK();
}

Status DiskRStarTree::RangeQueryBatch(
    const std::vector<Rect>& probes,
    const std::function<bool(int, const Rect&, uint64_t)>& visitor) const {
  DiskRStarMetrics::Get().batch_probes->Increment();
  // A batch of N probes answers N range probes; keep the per-probe counter
  // meaningful regardless of traversal strategy.
  DiskRStarMetrics::Get().range_probes->Increment(
      static_cast<uint64_t>(probes.size()));
  static Histogram* const occupancy =
      MetricsRegistry::Global().GetHistogram("walrus.probe.batch_occupancy",
                                             ExponentialBuckets(1, 2, 12));
  std::vector<int> order;
  order.reserve(probes.size());
  for (int p = 0; p < static_cast<int>(probes.size()); ++p) {
    if (probes[p].IsEmpty()) continue;  // empty probes match nothing
    WALRUS_CHECK_EQ(probes[p].dim(), dim_);
    order.push_back(p);
  }
  if (order.empty() || size_ == 0) return Status::OK();
  if (order.size() > 1 && dim_ >= 2) {
    float min_v = std::numeric_limits<float>::max();
    float max_v = std::numeric_limits<float>::lowest();
    for (int p : order) {
      for (int d = 0; d < 2; ++d) {
        const float c = 0.5f * (probes[p].lo(d) + probes[p].hi(d));
        min_v = std::min(min_v, c);
        max_v = std::max(max_v, c);
      }
    }
    std::vector<uint64_t> keys(probes.size());
    for (int p : order) {
      keys[p] = HilbertProbeKey(0.5f * (probes[p].lo(0) + probes[p].hi(0)),
                                0.5f * (probes[p].lo(1) + probes[p].hi(1)),
                                min_v, max_v);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&keys](int a, int b) { return keys[a] < keys[b]; });
  }

  const simd::KernelTable& kern = simd::Active();
  // Active sets live in one append-only arena; each frame references a
  // slice (see RStarTree::RangeQueryBatch — same structure, but node pages
  // decode straight into SoA planes so no packing step exists here).
  struct Frame {
    uint32_t page;
    uint32_t begin;
    uint32_t len;
  };
  std::vector<int> arena = std::move(order);
  std::vector<Frame> stack;
  stack.push_back({root_page_, 0, static_cast<uint32_t>(arena.size())});
  std::vector<uint64_t> masks;  // probe-major: masks[pi * words + w]
  std::vector<Frame> pending;   // children of the current node, entry order
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    // One page fetch serves every active probe at this node.
    WALRUS_ASSIGN_OR_RETURN(NodeRef node, ReadNode(frame.page));
    occupancy->Observe(static_cast<double>(frame.len));
    if (node.count == 0) continue;
    const int words = (node.count + 63) / 64;
    if (node.is_leaf) {
      masks.resize(words);
      for (uint32_t pi = 0; pi < frame.len; ++pi) {
        const int p = arena[frame.begin + pi];
        kern.batch_intersects(node.lo_planes(), node.hi_planes(), node.count,
                              dim_, node.count, probes[p].lo().data(),
                              probes[p].hi().data(), masks.data());
        for (int w = 0; w < words; ++w) {
          uint64_t bits = masks[w];
          while (bits != 0) {
            const int i = w * 64 + std::countr_zero(bits);
            bits &= bits - 1;
            if (!visitor(p, node.RectAt(i, dim_), node.values[i])) {
              return Status::OK();
            }
          }
        }
      }
    } else {
      masks.resize(static_cast<size_t>(words) * frame.len);
      for (uint32_t pi = 0; pi < frame.len; ++pi) {
        const int p = arena[frame.begin + pi];
        kern.batch_intersects(node.lo_planes(), node.hi_planes(), node.count,
                              dim_, node.count, probes[p].lo().data(),
                              probes[p].hi().data(),
                              masks.data() + static_cast<size_t>(pi) * words);
      }
      pending.clear();
      for (int i = 0; i < node.count; ++i) {
        const uint32_t begin = static_cast<uint32_t>(arena.size());
        const int w = i >> 6;
        const uint64_t bit = uint64_t{1} << (i & 63);
        for (uint32_t pi = 0; pi < frame.len; ++pi) {
          if (masks[static_cast<size_t>(pi) * words + w] & bit) {
            arena.push_back(arena[frame.begin + pi]);
          }
        }
        const uint32_t len = static_cast<uint32_t>(arena.size()) - begin;
        if (len > 0) {
          pending.push_back(
              {static_cast<uint32_t>(node.values[i]), begin, len});
        }
      }
      for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
  return Status::OK();
}

Result<std::vector<uint64_t>> DiskRStarTree::RangeSearch(
    const Rect& query) const {
  std::vector<uint64_t> out;
  WALRUS_RETURN_IF_ERROR(RangeSearchVisit(
      query, [&out](const Rect&, uint64_t payload) {
        out.push_back(payload);
        return true;
      }));
  return out;
}

Result<std::vector<std::pair<uint64_t, double>>>
DiskRStarTree::NearestNeighbors(const std::vector<float>& point,
                                int k) const {
  WALRUS_CHECK_EQ(static_cast<int>(point.size()), dim_);
  WALRUS_CHECK_GE(k, 1);
  DiskRStarMetrics::Get().knn_probes->Increment();
  std::vector<std::pair<uint64_t, double>> result;
  if (size_ == 0) return result;

  struct Item {
    double dist;
    bool is_entry;
    uint64_t value;  // payload (entry) or page id (node)
    bool operator>(const Item& other) const { return dist > other.dist; }
  };
  const simd::KernelTable& kern = simd::Active();
  std::vector<double> dists;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.push({0.0, false, root_page_});
  while (!heap.empty() && static_cast<int>(result.size()) < k) {
    Item item = heap.top();
    heap.pop();
    if (item.is_entry) {
      result.emplace_back(item.value, std::sqrt(item.dist));
      continue;
    }
    WALRUS_ASSIGN_OR_RETURN(NodeRef node,
                            ReadNode(static_cast<uint32_t>(item.value)));
    // SoA node: one batch kernel call scores every entry (bit-identical to
    // per-entry MinSquaredDistance -- each lane runs the scalar dim loop).
    dists.resize(node.count);
    kern.batch_min_squared_distance(node.lo_planes(), node.hi_planes(),
                                    node.count, dim_, node.count,
                                    point.data(), dists.data());
    for (int i = 0; i < node.count; ++i) {
      heap.push({dists[i], node.is_leaf, node.values[i]});
    }
  }
  return result;
}

}  // namespace walrus
