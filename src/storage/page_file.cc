#include "storage/page_file.h"

#include <cstdio>
#include <cstring>

#include "common/check.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/serialize.h"

namespace walrus {
namespace {

// Bumped from "WPGF" when the CRC-32 page trailer was added: the trailer
// changes the payload capacity, so files from the old format must not open.
constexpr uint32_t kMagic = 0x32464750;  // "PGF2"
constexpr uint32_t kMinPageSize = 64;

void PutU32At(std::vector<uint8_t>* buf, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) (*buf)[pos + i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetU32At(const std::vector<uint8_t>& buf, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buf[pos + i]) << (8 * i);
  return v;
}

}  // namespace

PageFile::PageFile(PageFile&& other) noexcept { *this = std::move(other); }

PageFile& PageFile::operator=(PageFile&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    page_size_ = other.page_size_;
    page_count_ = other.page_count_;
    cache_capacity_ = other.cache_capacity_;
    lru_ = std::move(other.lru_);
    cache_index_ = std::move(other.cache_index_);
    cache_hits_ = other.cache_hits_;
    cache_misses_ = other.cache_misses_;
    other.file_ = nullptr;
  }
  return *this;
}

PageFile::~PageFile() {
  if (file_ != nullptr) {
    // Destructors cannot propagate; a failed header flush here means the
    // file is already unusable, so record it and close anyway.
    Status flushed = WriteHeader();
    if (!flushed.ok()) {
      WALRUS_LOG(Warning) << "page file header flush failed on close: "
                          << flushed;
    }
    std::fclose(file_);
  }
}

Result<PageFile> PageFile::Create(const std::string& path,
                                  uint32_t page_size) {
  if (page_size < kMinPageSize) {
    return Status::InvalidArgument("page size too small");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) return Status::IOError("cannot create page file: " + path);
  PageFile pf;
  pf.file_ = f;
  pf.path_ = path;
  pf.page_size_ = page_size;
  pf.page_count_ = 1;
  WALRUS_RETURN_IF_ERROR(pf.WriteHeader());
  return pf;
}

Result<PageFile> PageFile::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return Status::IOError("cannot open page file: " + path);
  uint8_t header[12];
  if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
    std::fclose(f);
    return Status::Corruption("page file: short header: " + path);
  }
  BinaryReader reader(header, sizeof(header));
  uint32_t magic = reader.GetU32().value();
  uint32_t page_size = reader.GetU32().value();
  uint32_t page_count = reader.GetU32().value();
  if (magic != kMagic || page_size < kMinPageSize || page_count < 1) {
    std::fclose(f);
    return Status::Corruption("page file: bad header: " + path);
  }
  // Verify the header page's checksum before trusting anything else in it.
  std::vector<uint8_t> header_page(page_size);
  if (std::fseek(f, 0, SEEK_SET) != 0 ||
      std::fread(header_page.data(), 1, header_page.size(), f) !=
          header_page.size()) {
    std::fclose(f);
    return Status::Corruption("page file: short header page: " + path);
  }
  size_t body = header_page.size() - PageFile::kChecksumBytes;
  if (GetU32At(header_page, body) != Crc32(header_page.data(), body)) {
    std::fclose(f);
    return Status::Corruption("page file: header checksum mismatch: " + path);
  }
  // The file must actually hold every page the header claims.
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("page file: cannot stat: " + path);
  }
  long actual_size = std::ftell(f);
  long expected_size = static_cast<long>(page_count) * page_size;
  if (actual_size < expected_size) {
    std::fclose(f);
    return Status::Corruption(
        "page file: truncated (" + std::to_string(actual_size) + " bytes, " +
        "header claims " + std::to_string(expected_size) + "): " + path);
  }
  PageFile pf;
  pf.file_ = f;
  pf.path_ = path;
  pf.page_size_ = page_size;
  pf.page_count_ = page_count;
  return pf;
}

Status PageFile::WriteHeader() {
  BinaryWriter writer;
  writer.PutU32(kMagic);
  writer.PutU32(page_size_);
  writer.PutU32(page_count_);
  std::vector<uint8_t> page(page_size_, 0);
  std::memcpy(page.data(), writer.buffer().data(), writer.size());
  return WritePageInternal(0, std::move(page));
}

Status PageFile::WritePageInternal(uint32_t id, std::vector<uint8_t> data) {
  WALRUS_DCHECK_EQ(data.size(), page_size_);
  size_t body = data.size() - kChecksumBytes;
  PutU32At(&data, body, Crc32(data.data(), body));
  long offset = static_cast<long>(id) * page_size_;
  if (std::fseek(file_, offset, SEEK_SET) != 0 ||
      std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return Status::IOError("page write failed: page " + std::to_string(id));
  }
  return Status::OK();
}

Result<uint32_t> PageFile::AllocatePage() {
  uint32_t id = page_count_;
  std::vector<uint8_t> zero(page_size_, 0);
  WALRUS_RETURN_IF_ERROR(WritePageInternal(id, zero));
  page_count_ = id + 1;
  return id;
}

Status PageFile::WritePage(uint32_t id, const std::vector<uint8_t>& data) {
  if (id == 0 || id >= page_count_) {
    return Status::InvalidArgument("page id out of range");
  }
  if (data.size() != page_size_) {
    return Status::InvalidArgument("page data must be exactly one page");
  }
  CacheErase(id);  // keep the cache coherent with the file
  return WritePageInternal(id, data);
}

Result<std::vector<uint8_t>> PageFile::ReadPage(uint32_t id) {
  if (id == 0 || id >= page_count_) {
    return Status::InvalidArgument("page id out of range");
  }
  auto it = cache_index_.find(id);
  if (it != cache_index_.end()) {
    ++cache_hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recent
    return it->second->data;
  }
  ++cache_misses_;
  std::vector<uint8_t> page(page_size_);
  long offset = static_cast<long>(id) * page_size_;
  if (std::fseek(file_, offset, SEEK_SET) != 0 ||
      std::fread(page.data(), 1, page.size(), file_) != page.size()) {
    return Status::IOError("page read failed: page " + std::to_string(id));
  }
  size_t body = page.size() - kChecksumBytes;
  if (GetU32At(page, body) != Crc32(page.data(), body)) {
    return Status::Corruption("page checksum mismatch: page " +
                              std::to_string(id));
  }
  CacheInsert(id, page);
  return page;
}

Status PageFile::ValidateChecksums() {
  std::vector<uint8_t> page(page_size_);
  for (uint32_t id = 0; id < page_count_; ++id) {
    long offset = static_cast<long>(id) * page_size_;
    if (std::fseek(file_, offset, SEEK_SET) != 0 ||
        std::fread(page.data(), 1, page.size(), file_) != page.size()) {
      return Status::IOError("checksum sweep: cannot read page " +
                             std::to_string(id));
    }
    size_t body = page.size() - kChecksumBytes;
    if (GetU32At(page, body) != Crc32(page.data(), body)) {
      return Status::Corruption("checksum sweep: page " + std::to_string(id) +
                                " is corrupt");
    }
  }
  return Status::OK();
}

void PageFile::SetCacheCapacity(int pages) {
  WALRUS_CHECK_GE(pages, 0);
  cache_capacity_ = pages;
  while (static_cast<int>(lru_.size()) > cache_capacity_) {
    cache_index_.erase(lru_.back().id);
    lru_.pop_back();
  }
}

void PageFile::CacheInsert(uint32_t id, const std::vector<uint8_t>& page) {
  if (cache_capacity_ <= 0) return;
  while (static_cast<int>(lru_.size()) >= cache_capacity_) {
    cache_index_.erase(lru_.back().id);
    lru_.pop_back();
  }
  lru_.push_front(CacheEntry{id, page});
  cache_index_[id] = lru_.begin();
}

void PageFile::CacheErase(uint32_t id) {
  auto it = cache_index_.find(id);
  if (it == cache_index_.end()) return;
  lru_.erase(it->second);
  cache_index_.erase(it);
}

Result<BlobRef> PageFile::WriteBlob(const std::vector<uint8_t>& bytes) {
  uint32_t payload = PagePayload();
  size_t num_pages = bytes.empty() ? 1 : (bytes.size() + payload - 1) / payload;
  std::vector<uint32_t> ids(num_pages);
  for (size_t i = 0; i < num_pages; ++i) {
    WALRUS_ASSIGN_OR_RETURN(ids[i], AllocatePage());
  }
  size_t offset = 0;
  for (size_t i = 0; i < num_pages; ++i) {
    size_t chunk = std::min<size_t>(payload, bytes.size() - offset);
    std::vector<uint8_t> page(page_size_, 0);
    uint32_t next = i + 1 < num_pages ? ids[i + 1] : 0;
    PutU32At(&page, 0, next);
    PutU32At(&page, 4, static_cast<uint32_t>(chunk));
    if (chunk > 0) std::memcpy(page.data() + 8, bytes.data() + offset, chunk);
    WALRUS_RETURN_IF_ERROR(WritePage(ids[i], page));
    offset += chunk;
  }
  return BlobRef{ids[0], bytes.size()};
}

Result<std::vector<uint8_t>> PageFile::ReadBlob(const BlobRef& ref) {
  std::vector<uint8_t> out;
  out.reserve(ref.length);
  uint32_t page_id = ref.head_page;
  while (page_id != 0) {
    WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> page, ReadPage(page_id));
    uint32_t next = GetU32At(page, 0);
    uint32_t used = GetU32At(page, 4);
    if (used > PagePayload()) return Status::Corruption("blob page overfull");
    out.insert(out.end(), page.begin() + 8, page.begin() + 8 + used);
    if (out.size() > ref.length) return Status::Corruption("blob too long");
    page_id = next;
  }
  if (out.size() != ref.length) {
    return Status::Corruption("blob length mismatch: got " +
                              std::to_string(out.size()) + " want " +
                              std::to_string(ref.length));
  }
  return out;
}

Status PageFile::Sync() {
  WALRUS_RETURN_IF_ERROR(WriteHeader());
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  return Status::OK();
}

}  // namespace walrus
