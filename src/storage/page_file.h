#ifndef WALRUS_STORAGE_PAGE_FILE_H_
#define WALRUS_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace walrus {

/// Reference to a blob stored in a PageFile: the head page of its chain and
/// its total byte length.
struct BlobRef {
  uint32_t head_page = 0;
  uint64_t length = 0;
};

/// Fixed-size-page file with a chained-page blob layer; the disk substrate
/// beneath the persistent image/region catalog (the paper stores region
/// signatures and bitmaps in a disk-based index).
///
/// Layout: page 0 is the header (magic, page size, page count). Every data
/// page starts with an 8-byte header: u32 next-page id (0 = end of chain)
/// and u32 payload bytes used in this page. The last 4 bytes of every page
/// (header page included) hold a CRC-32 of the rest of the page, stamped on
/// write and verified on every uncached read, so media or software
/// corruption surfaces as Status::Corruption instead of silently wrong data.
class PageFile {
 public:
  static constexpr uint32_t kDefaultPageSize = 4096;
  /// Pages kept in the read cache (LRU). 0 disables caching.
  static constexpr int kDefaultCachePages = 64;
  /// Bytes of each page reserved for the CRC-32 trailer.
  static constexpr uint32_t kChecksumBytes = 4;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;
  PageFile(PageFile&&) noexcept;
  PageFile& operator=(PageFile&&) noexcept;
  ~PageFile();

  /// Creates (truncates) a page file at `path`.
  static Result<PageFile> Create(const std::string& path,
                                 uint32_t page_size = kDefaultPageSize);

  /// Opens an existing page file and validates its header.
  static Result<PageFile> Open(const std::string& path);

  uint32_t page_size() const { return page_size_; }
  uint32_t page_count() const { return page_count_; }
  /// Payload capacity per data page (page minus chain header and checksum).
  uint32_t PagePayload() const { return page_size_ - 8 - kChecksumBytes; }

  /// Appends a new zeroed page; returns its id.
  Result<uint32_t> AllocatePage();

  /// Overwrites page `id` with `data` (must be exactly page_size bytes).
  /// The last kChecksumBytes of the page are reserved: they are replaced by
  /// the CRC-32 trailer, so only the first page_size - kChecksumBytes bytes
  /// of `data` round-trip through ReadPage.
  Status WritePage(uint32_t id, const std::vector<uint8_t>& data);

  /// Reads page `id`, serving repeated reads from an LRU cache.
  Result<std::vector<uint8_t>> ReadPage(uint32_t id);

  /// Resizes the read cache (entries are dropped oldest-first); 0 disables.
  void SetCacheCapacity(int pages);

  /// Cache hit/miss counters since creation (diagnostics).
  int64_t cache_hits() const { return cache_hits_; }
  int64_t cache_misses() const { return cache_misses_; }

  /// Stores `bytes` across a fresh chain of pages.
  Result<BlobRef> WriteBlob(const std::vector<uint8_t>& bytes);

  /// Reads back a blob written by WriteBlob.
  Result<std::vector<uint8_t>> ReadBlob(const BlobRef& ref);

  /// Flushes buffered writes and the header to disk.
  Status Sync();

  /// Checksum sweep: re-reads every page straight from disk (bypassing the
  /// read cache) and verifies its CRC-32 trailer. Returns Corruption naming
  /// the first bad page. O(file size); validation/scrub tool, not a hot
  /// path.
  Status ValidateChecksums();

 private:
  PageFile() = default;

  Status WriteHeader();
  /// Stamps the CRC trailer into `data` and writes it at page `id`.
  Status WritePageInternal(uint32_t id, std::vector<uint8_t> data);
  void CacheInsert(uint32_t id, const std::vector<uint8_t>& page);
  void CacheErase(uint32_t id);

  std::FILE* file_ = nullptr;
  std::string path_;
  uint32_t page_size_ = kDefaultPageSize;
  uint32_t page_count_ = 1;  // header page

  // LRU read cache: most-recent at the front of lru_; map values point into
  // the list.
  struct CacheEntry {
    uint32_t id;
    std::vector<uint8_t> data;
  };
  int cache_capacity_ = kDefaultCachePages;
  std::list<CacheEntry> lru_;
  std::unordered_map<uint32_t, std::list<CacheEntry>::iterator> cache_index_;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
};

}  // namespace walrus

#endif  // WALRUS_STORAGE_PAGE_FILE_H_
