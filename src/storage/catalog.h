#ifndef WALRUS_STORAGE_CATALOG_H_
#define WALRUS_STORAGE_CATALOG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace walrus {

/// Persistent description of one extracted image region: everything the
/// query pipeline needs without re-reading pixels (paper section 5.3 stores
/// "its signature along with its bitmap" per region).
struct RegionRecord {
  uint32_t region_id = 0;  // index within its image
  /// Cluster centroid signature (dim = channels * s * s).
  std::vector<float> centroid;
  /// Optional refined centroid (channels * r * r; empty when refinement is
  /// disabled). See WalrusParams::refined_signature_size.
  std::vector<float> refined_centroid;
  /// Bounding box of all window signatures in the cluster.
  std::vector<float> bbox_lo;
  std::vector<float> bbox_hi;
  /// Coarse coverage bitmap, row-major bitmap_side x bitmap_side bits packed
  /// into bytes.
  std::vector<uint8_t> bitmap;
  uint32_t bitmap_side = 0;
  /// Number of sliding windows clustered into this region.
  uint64_t window_count = 0;
  /// Binary prefilter signature: one 64-bit thermometer word per centroid
  /// dimension (core/signature_filter.h). A pure function of `centroid`;
  /// empty records (legacy catalogs) are recomputed on load.
  std::vector<uint64_t> signature;

  void Serialize(BinaryWriter* writer) const;
  static Result<RegionRecord> Deserialize(BinaryReader* reader);
};

/// Per-image catalog entry.
struct ImageRecord {
  uint64_t image_id = 0;
  std::string name;
  uint32_t width = 0;
  uint32_t height = 0;
  std::vector<RegionRecord> regions;

  void Serialize(BinaryWriter* writer) const;
  static Result<ImageRecord> Deserialize(BinaryReader* reader);
};

/// The image/region metadata store behind a WalrusIndex. In memory it is an
/// id-ordered vector plus a hash map; on disk each image record is one blob
/// in a PageFile, located through a directory blob.
class Catalog {
 public:
  Catalog() = default;

  /// Adds an image record; its image_id must be unused.
  Status AddImage(ImageRecord record);

  /// Removes an image record; NotFound when absent.
  Status RemoveImage(uint64_t image_id);

  const ImageRecord* FindImage(uint64_t image_id) const;
  const std::vector<ImageRecord>& images() const { return images_; }
  size_t size() const { return images_.size(); }

  /// Total regions across all images.
  size_t TotalRegions() const;

  /// Structural validation: the id map and the record vector must agree
  /// (equal sizes, every map slot in range and pointing at the record with
  /// that id), region ids must be unique within each image, and every
  /// region bbox must be well-formed (lo/hi same length, lo <= hi). Returns
  /// an error describing the first violation.
  Status Validate() const;

  /// Persists the catalog into a freshly created PageFile at `path`.
  Status SaveToFile(const std::string& path) const;

  /// Loads a catalog previously written by SaveToFile.
  static Result<Catalog> LoadFromFile(const std::string& path);

  void Serialize(BinaryWriter* writer) const;
  static Result<Catalog> Deserialize(BinaryReader* reader);

 private:
  std::vector<ImageRecord> images_;
  std::unordered_map<uint64_t, size_t> by_id_;
};

}  // namespace walrus

#endif  // WALRUS_STORAGE_CATALOG_H_
