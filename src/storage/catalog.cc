#include "storage/catalog.h"

#include <unordered_set>

#include "storage/page_file.h"

namespace walrus {

void RegionRecord::Serialize(BinaryWriter* writer) const {
  writer->PutU32(region_id);
  writer->PutFloatVector(centroid);
  writer->PutFloatVector(refined_centroid);
  writer->PutFloatVector(bbox_lo);
  writer->PutFloatVector(bbox_hi);
  writer->PutU32(bitmap_side);
  writer->PutU32(static_cast<uint32_t>(bitmap.size()));
  writer->PutBytes(bitmap.data(), bitmap.size());
  writer->PutU64(window_count);
  writer->PutU32(static_cast<uint32_t>(signature.size()));
  for (uint64_t word : signature) writer->PutU64(word);
}

Result<RegionRecord> RegionRecord::Deserialize(BinaryReader* reader) {
  RegionRecord r;
  WALRUS_ASSIGN_OR_RETURN(r.region_id, reader->GetU32());
  WALRUS_ASSIGN_OR_RETURN(r.centroid, reader->GetFloatVector());
  WALRUS_ASSIGN_OR_RETURN(r.refined_centroid, reader->GetFloatVector());
  WALRUS_ASSIGN_OR_RETURN(r.bbox_lo, reader->GetFloatVector());
  WALRUS_ASSIGN_OR_RETURN(r.bbox_hi, reader->GetFloatVector());
  WALRUS_ASSIGN_OR_RETURN(r.bitmap_side, reader->GetU32());
  WALRUS_ASSIGN_OR_RETURN(uint32_t bitmap_bytes, reader->GetU32());
  r.bitmap.resize(bitmap_bytes);
  WALRUS_RETURN_IF_ERROR(reader->GetBytes(r.bitmap.data(), bitmap_bytes));
  WALRUS_ASSIGN_OR_RETURN(r.window_count, reader->GetU64());
  WALRUS_ASSIGN_OR_RETURN(uint32_t signature_words, reader->GetU32());
  r.signature.resize(signature_words);
  for (uint32_t i = 0; i < signature_words; ++i) {
    WALRUS_ASSIGN_OR_RETURN(r.signature[i], reader->GetU64());
  }
  return r;
}

void ImageRecord::Serialize(BinaryWriter* writer) const {
  writer->PutU64(image_id);
  writer->PutString(name);
  writer->PutU32(width);
  writer->PutU32(height);
  writer->PutU32(static_cast<uint32_t>(regions.size()));
  for (const RegionRecord& r : regions) r.Serialize(writer);
}

Result<ImageRecord> ImageRecord::Deserialize(BinaryReader* reader) {
  ImageRecord rec;
  WALRUS_ASSIGN_OR_RETURN(rec.image_id, reader->GetU64());
  WALRUS_ASSIGN_OR_RETURN(rec.name, reader->GetString());
  WALRUS_ASSIGN_OR_RETURN(rec.width, reader->GetU32());
  WALRUS_ASSIGN_OR_RETURN(rec.height, reader->GetU32());
  WALRUS_ASSIGN_OR_RETURN(uint32_t num_regions, reader->GetU32());
  rec.regions.reserve(num_regions);
  for (uint32_t i = 0; i < num_regions; ++i) {
    WALRUS_ASSIGN_OR_RETURN(RegionRecord r, RegionRecord::Deserialize(reader));
    rec.regions.push_back(std::move(r));
  }
  return rec;
}

Status Catalog::AddImage(ImageRecord record) {
  if (by_id_.count(record.image_id) != 0) {
    return Status::AlreadyExists("image id " +
                                 std::to_string(record.image_id));
  }
  by_id_[record.image_id] = images_.size();
  images_.push_back(std::move(record));
  return Status::OK();
}

Status Catalog::RemoveImage(uint64_t image_id) {
  auto it = by_id_.find(image_id);
  if (it == by_id_.end()) {
    return Status::NotFound("image id " + std::to_string(image_id));
  }
  size_t index = it->second;
  by_id_.erase(it);
  // Swap-with-last keeps removal O(1); fix the moved record's slot.
  if (index + 1 != images_.size()) {
    images_[index] = std::move(images_.back());
    by_id_[images_[index].image_id] = index;
  }
  images_.pop_back();
  return Status::OK();
}

const ImageRecord* Catalog::FindImage(uint64_t image_id) const {
  auto it = by_id_.find(image_id);
  if (it == by_id_.end()) return nullptr;
  return &images_[it->second];
}

size_t Catalog::TotalRegions() const {
  size_t total = 0;
  for (const ImageRecord& rec : images_) total += rec.regions.size();
  return total;
}

Status Catalog::Validate() const {
  if (by_id_.size() != images_.size()) {
    return Status::Internal("catalog: id map has " +
                            std::to_string(by_id_.size()) +
                            " entries, record vector has " +
                            std::to_string(images_.size()));
  }
  for (const auto& [id, index] : by_id_) {
    if (index >= images_.size()) {
      return Status::Internal("catalog: id map slot for image " +
                              std::to_string(id) + " is out of range");
    }
    if (images_[index].image_id != id) {
      return Status::Internal("catalog: id map for image " +
                              std::to_string(id) +
                              " points at record with id " +
                              std::to_string(images_[index].image_id));
    }
  }
  for (const ImageRecord& rec : images_) {
    std::unordered_set<uint32_t> region_ids;
    for (const RegionRecord& region : rec.regions) {
      if (!region_ids.insert(region.region_id).second) {
        return Status::Internal("catalog: duplicate region id " +
                                std::to_string(region.region_id) +
                                " in image " + std::to_string(rec.image_id));
      }
      if (region.bbox_lo.size() != region.bbox_hi.size()) {
        return Status::Internal("catalog: bbox lo/hi length mismatch in image " +
                                std::to_string(rec.image_id));
      }
      for (size_t d = 0; d < region.bbox_lo.size(); ++d) {
        if (!(region.bbox_lo[d] <= region.bbox_hi[d])) {
          return Status::Internal("catalog: inverted bbox in image " +
                                  std::to_string(rec.image_id) + " region " +
                                  std::to_string(region.region_id));
        }
      }
    }
  }
  return Status::OK();
}

void Catalog::Serialize(BinaryWriter* writer) const {
  writer->PutU32(0x57434154);  // "WCAT"
  writer->PutU32(static_cast<uint32_t>(images_.size()));
  for (const ImageRecord& rec : images_) rec.Serialize(writer);
}

Result<Catalog> Catalog::Deserialize(BinaryReader* reader) {
  WALRUS_ASSIGN_OR_RETURN(uint32_t magic, reader->GetU32());
  if (magic != 0x57434154) return Status::Corruption("catalog: bad magic");
  WALRUS_ASSIGN_OR_RETURN(uint32_t count, reader->GetU32());
  Catalog catalog;
  for (uint32_t i = 0; i < count; ++i) {
    WALRUS_ASSIGN_OR_RETURN(ImageRecord rec, ImageRecord::Deserialize(reader));
    WALRUS_RETURN_IF_ERROR(catalog.AddImage(std::move(rec)));
  }
  return catalog;
}

Status Catalog::SaveToFile(const std::string& path) const {
  WALRUS_ASSIGN_OR_RETURN(PageFile file, PageFile::Create(path));
  // One blob per image record; a directory blob maps ids to blob refs and a
  // trailer on the header... the directory blob ref itself is stored last in
  // a fixed "root" blob written first (page 1) so Open can find it.
  BinaryWriter directory;
  directory.PutU32(static_cast<uint32_t>(images_.size()));
  std::vector<BlobRef> refs;
  refs.reserve(images_.size());
  for (const ImageRecord& rec : images_) {
    BinaryWriter rec_writer;
    rec.Serialize(&rec_writer);
    WALRUS_ASSIGN_OR_RETURN(BlobRef ref, file.WriteBlob(rec_writer.buffer()));
    directory.PutU64(rec.image_id);
    directory.PutU32(ref.head_page);
    directory.PutU64(ref.length);
  }
  WALRUS_ASSIGN_OR_RETURN(BlobRef dir_ref, file.WriteBlob(directory.buffer()));
  // Root blob: fixed location right after the directory, pointed to by the
  // last page; we store the directory ref in a final tiny blob and remember
  // its head page as page_count-1 on load. To keep this deterministic we
  // write it last.
  BinaryWriter root;
  root.PutU32(dir_ref.head_page);
  root.PutU64(dir_ref.length);
  WALRUS_ASSIGN_OR_RETURN(BlobRef root_ref, file.WriteBlob(root.buffer()));
  (void)root_ref;  // by construction: the file's last page
  return file.Sync();
}

Result<Catalog> Catalog::LoadFromFile(const std::string& path) {
  WALRUS_ASSIGN_OR_RETURN(PageFile file, PageFile::Open(path));
  if (file.page_count() < 2) return Status::Corruption("catalog: empty file");
  // Root blob is the last page.
  BlobRef root_ref{file.page_count() - 1, 12};
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> root_bytes,
                          file.ReadBlob(root_ref));
  BinaryReader root(root_bytes);
  WALRUS_ASSIGN_OR_RETURN(uint32_t dir_head, root.GetU32());
  WALRUS_ASSIGN_OR_RETURN(uint64_t dir_len, root.GetU64());
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> dir_bytes,
                          file.ReadBlob(BlobRef{dir_head, dir_len}));
  BinaryReader dir(dir_bytes);
  WALRUS_ASSIGN_OR_RETURN(uint32_t count, dir.GetU32());
  Catalog catalog;
  for (uint32_t i = 0; i < count; ++i) {
    WALRUS_ASSIGN_OR_RETURN(uint64_t image_id, dir.GetU64());
    WALRUS_ASSIGN_OR_RETURN(uint32_t head, dir.GetU32());
    WALRUS_ASSIGN_OR_RETURN(uint64_t length, dir.GetU64());
    WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                            file.ReadBlob(BlobRef{head, length}));
    BinaryReader rec_reader(bytes);
    WALRUS_ASSIGN_OR_RETURN(ImageRecord rec,
                            ImageRecord::Deserialize(&rec_reader));
    if (rec.image_id != image_id) {
      return Status::Corruption("catalog: directory/record id mismatch");
    }
    WALRUS_RETURN_IF_ERROR(catalog.AddImage(std::move(rec)));
  }
  return catalog;
}

}  // namespace walrus
