#ifndef WALRUS_STORAGE_DISK_RSTAR_H_
#define WALRUS_STORAGE_DISK_RSTAR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "spatial/rect.h"
#include "storage/page_file.h"

namespace walrus {

/// Disk-resident R-tree for query serving: one node per PageFile page, read
/// through the page file's LRU cache. The paper indexes region signatures
/// in a "disk-based R*-tree" (section 5.3, via libGiST); this is that
/// deployment shape -- queries touch only the pages along the search path
/// instead of deserializing the whole tree into memory.
///
/// The tree is immutable once built (WALRUS's index is build-once /
/// query-many; mutations go through the in-memory RStarTree and a rebuild).
/// Construction uses the same Sort-Tile-Recursive packing as
/// RStarTree::BulkLoad, writing levels bottom-up.
///
/// Thread safety: concurrent queries are supported; page reads are
/// serialized by an internal mutex (the page cache is an LRU that mutates
/// on every read, so even "read-only" probes are writes at this layer).
/// The compiler enforces the discipline: `file_` is WALRUS_GUARDED_BY
/// io_mutex_, so any path that touches the page file without the lock
/// fails a -Wthread-safety build. The cache-counter accessors and
/// SetCacheCapacity take the same mutex, so polling diagnostics while
/// queries run is safe; pages_read() is a relaxed atomic and never blocks
/// a query. Moving the tree takes both objects' locks, but a moved-from
/// tree must no longer be queried.
///
/// Page layout (little endian):
///   u8  is_leaf, u8 reserved, u16 entry_count, u32 reserved
///   then entry_count entries of:
///     dim f32 lo, dim f32 hi, u64 payload_or_child_page
class DiskRStarTree {
 public:
  DiskRStarTree(const DiskRStarTree&) = delete;
  DiskRStarTree& operator=(const DiskRStarTree&) = delete;
  DiskRStarTree(DiskRStarTree&& other) noexcept
      : file_(TakeFile(other)),
        page_size_(other.page_size_),
        page_count_(other.page_count_),
        dim_(other.dim_),
        size_(other.size_),
        height_(other.height_),
        root_page_(other.root_page_),
        pages_read_(other.pages_read_.load(std::memory_order_relaxed)) {}
  DiskRStarTree& operator=(DiskRStarTree&& other) noexcept {
    if (this != &other) {
      MutexLock mine(io_mutex_);
      MutexLock theirs(other.io_mutex_);
      file_ = std::move(other.file_);
      page_size_ = other.page_size_;
      page_count_ = other.page_count_;
      dim_ = other.dim_;
      size_ = other.size_;
      height_ = other.height_;
      root_page_ = other.root_page_;
      pages_read_.store(other.pages_read_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    return *this;
  }

  /// STR-packs `entries` into a new page file at `path`.
  static Result<DiskRStarTree> Build(
      const std::string& path, int dim,
      std::vector<std::pair<Rect, uint64_t>> entries,
      uint32_t page_size = PageFile::kDefaultPageSize);

  /// Opens a tree previously written by Build.
  static Result<DiskRStarTree> Open(const std::string& path);

  int dim() const { return dim_; }
  int64_t size() const { return size_; }
  int height() const { return height_; }
  /// Entries per node for this dimension/page size (diagnostics).
  int NodeCapacity() const;

  /// Streams all entries whose rects intersect `query`; return false from
  /// the visitor to stop. IO errors abort the walk and are returned.
  Status RangeSearchVisit(
      const Rect& query,
      const std::function<bool(const Rect&, uint64_t)>& visitor) const;

  /// Collects intersecting payloads.
  Result<std::vector<uint64_t>> RangeSearch(const Rect& query) const;

  /// Batched multi-probe range search: one shared traversal answers every
  /// probe, so each page along a shared path is fetched once per batch
  /// instead of once per probe (same contract as
  /// RStarTree::RangeQueryBatch -- Hilbert-sorted probes, per-node SIMD
  /// filtering of the active set, union-of-single-probe results with
  /// node-grouped delivery order, visitor false aborts the batch).
  Status RangeQueryBatch(
      const std::vector<Rect>& probes,
      const std::function<bool(int, const Rect&, uint64_t)>& visitor) const;

  /// Best-first k nearest entries to `point` (ascending distance).
  Result<std::vector<std::pair<uint64_t, double>>> NearestNeighbors(
      const std::vector<float>& point, int k) const;

  /// Deep structural validation: sweeps every page's CRC-32 trailer, then
  /// walks the tree from the root verifying that each stored parent rect
  /// equals the union of its child's rects, that all leaves sit at
  /// `height()`, that no page is reachable twice (cycle guard), that page
  /// ids stay in range, and that leaf entries sum to `size()`. O(file
  /// size); validation/scrub tool, not a hot path.
  Status Validate() const;

  /// Pages fetched by queries since opening (served from cache or disk).
  int64_t pages_read() const {
    return pages_read_.load(std::memory_order_relaxed);
  }
  /// Underlying page-cache counters.
  int64_t cache_hits() const WALRUS_EXCLUDES(io_mutex_) {
    MutexLock lock(io_mutex_);
    return file_.cache_hits();
  }
  int64_t cache_misses() const WALRUS_EXCLUDES(io_mutex_) {
    MutexLock lock(io_mutex_);
    return file_.cache_misses();
  }
  /// Resizes the page cache (0 disables; measures cold-read costs). Safe
  /// to call while queries are in flight.
  void SetCacheCapacity(int pages) WALRUS_EXCLUDES(io_mutex_) {
    MutexLock lock(io_mutex_);
    file_.SetCacheCapacity(pages);
  }

 private:
  /// One decoded node, re-laid as SoA planes for the batch kernels
  /// (common/simd.h): dimension d's lower bounds occupy
  /// lo[d * count, (d + 1) * count), likewise hi. Decoding transposes the
  /// on-disk entry-major layout directly into the planes -- no per-entry
  /// Rect / vector allocations on the read path.
  struct NodeRef {
    bool is_leaf = false;
    int count = 0;
    std::vector<float> lo;         // dim * count floats, dimension-major
    std::vector<float> hi;
    std::vector<uint64_t> values;  // payloads (leaf) or child pages

    const float* lo_planes() const { return lo.data(); }
    const float* hi_planes() const { return hi.data(); }
    /// Materializes entry i as a Rect (hit delivery / validation only).
    Rect RectAt(int i, int dim) const;
  };

  explicit DiskRStarTree(PageFile file)
      : file_(std::move(file)),
        page_size_(file_.page_size()),
        page_count_(file_.page_count()) {}

  /// Extracts `other`'s page file under its lock (move-construction only:
  /// guarded fields may not be read without the owning mutex, even from a
  /// constructor of the same class).
  static PageFile TakeFile(DiskRStarTree& other)
      WALRUS_EXCLUDES(other.io_mutex_) {
    MutexLock lock(other.io_mutex_);
    return std::move(other.file_);
  }

  Result<NodeRef> ReadNode(uint32_t page_id) const
      WALRUS_EXCLUDES(io_mutex_);

  mutable Mutex io_mutex_;
  mutable PageFile file_ WALRUS_GUARDED_BY(io_mutex_);
  /// Page geometry, cached at construction so probe paths can size and
  /// bound-check nodes without taking io_mutex_ (immutable once built).
  uint32_t page_size_ = PageFile::kDefaultPageSize;
  uint32_t page_count_ = 0;
  int dim_ = 0;
  int64_t size_ = 0;
  int height_ = 0;
  uint32_t root_page_ = 0;
  /// Pages fetched by queries (relaxed: a diagnostics counter).
  mutable std::atomic<int64_t> pages_read_{0};
};

}  // namespace walrus

#endif  // WALRUS_STORAGE_DISK_RSTAR_H_
