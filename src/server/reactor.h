#ifndef WALRUS_SERVER_REACTOR_H_
#define WALRUS_SERVER_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/socket.h"
#include "common/sync.h"
#include "server/protocol.h"

namespace walrus {

class EventLoop;

/// Metric surface of the reactor tier (walrus.server.reactor.* in
/// docs/OPERATIONS.md). The server resolves the registry pointers once at
/// Start() and hands this struct to every loop; `bytes_out` feeds the
/// server's STATS counter from the flush path.
struct ReactorStats {
  Counter* wakeups = nullptr;        // walrus.server.reactor.wakeups
  Counter* stalled_reads = nullptr;  // walrus.server.reactor.stalled_reads
  Gauge* queue_bytes = nullptr;      // walrus.server.reactor.queue_bytes
  Gauge* in_flight = nullptr;        // walrus.server.reactor.in_flight
  Gauge* connections = nullptr;      // walrus.server.reactor.connections
  std::atomic<uint64_t>* bytes_out = nullptr;
};

/// Reactor knobs, split from ServerOptions so the loops do not depend on
/// the server header.
struct ReactorOptions {
  /// Per-connection outbound-queue byte budget: once queued-but-unwritten
  /// responses exceed it the loop stops reading from that connection
  /// (backpressure) until the queue drains below half the budget.
  size_t max_conn_outbound_bytes = 4u << 20;
  /// Bytes read from one connection per loop wakeup before yielding to
  /// the other connections on the loop (fairness under pipelining).
  size_t read_chunk_budget = 256u << 10;
  /// When > 0, cap each connection's kernel send buffer (SO_SNDBUF) to
  /// roughly this many bytes. Bounds kernel-side memory per slow peer and
  /// makes the outbound-queue backpressure engage at a predictable point
  /// instead of after the kernel autotunes multi-megabyte buffers.
  int so_sndbuf_bytes = 0;
};

/// One accepted connection, owned by exactly one EventLoop. All socket
/// I/O and input parsing happen on that loop's thread; worker threads only
/// deliver completed responses through Respond(), which is why the locked
/// section is a queue handoff and never a syscall made off-loop.
///
/// Pipelining contract: every request parsed from this connection claims
/// the next sequence number (AllocateSeq) in arrival order, and responses
/// enter the outbound byte stream strictly in sequence order no matter
/// which worker finishes first -- out-of-order completions park in
/// `completed_` until the head of the line arrives.
class ReactorConn : public std::enable_shared_from_this<ReactorConn> {
 public:
  ReactorConn(UniqueFd fd, EventLoop* loop, ReactorStats* stats,
              const ReactorOptions& options);
  ~ReactorConn();

  ReactorConn(const ReactorConn&) = delete;
  ReactorConn& operator=(const ReactorConn&) = delete;

  // ---- Parse-side surface (loop thread only) ---------------------------

  /// Unconsumed buffered input; returns the byte count and points `*data`
  /// at the first unconsumed byte.
  size_t PendingInput(const uint8_t** data) const;

  /// Marks `n` bytes of pending input as consumed (a parsed frame).
  void ConsumeInput(size_t n);

  /// Claims the next response slot in request-arrival order.
  uint64_t AllocateSeq() { return next_seq_++; }

  /// Declares a request in flight (dispatched to the worker pool). Its
  /// Respond() must pass ends_in_flight = true.
  void BeginRequest() WALRUS_EXCLUDES(mutex_);

  /// Stops reading and closes the connection once every allocated
  /// response slot has been written out (framing lost / fatal frame).
  void CloseAfterFlush() WALRUS_EXCLUDES(mutex_);

  // ---- Completion surface (any thread) ---------------------------------

  /// Delivers the response for slot `seq`. Safe from worker threads; wakes
  /// the owning loop to flush. `ends_in_flight` pairs with BeginRequest().
  void Respond(uint64_t seq, FrameParts frame, bool ends_in_flight)
      WALRUS_EXCLUDES(mutex_);

  int fd() const { return fd_.get(); }

 private:
  friend class EventLoop;

  /// Moves consecutive completed responses into the outbound queue.
  void PromoteLocked() WALRUS_REQUIRES(mutex_);

  /// Drains the outbound queue with scatter-gather writes until the
  /// socket would block or the queue empties. Returns false when the peer
  /// is gone (write error) and the connection must be torn down.
  bool FlushLocked() WALRUS_REQUIRES(mutex_);

  /// Applies the backpressure watermarks to read_paused_.
  void UpdateBackpressureLocked() WALRUS_REQUIRES(mutex_);

  UniqueFd fd_;
  EventLoop* const loop_;
  ReactorStats* const stats_;
  const ReactorOptions options_;

  // Loop-thread-only state (no lock): the input buffer the parser works
  // on, the allocator for response sequence numbers (assigned during
  // parsing), and the cached epoll interest mask.
  std::vector<uint8_t> input_;
  size_t input_consumed_ = 0;
  uint64_t next_seq_ = 0;
  uint32_t epoll_mask_ = 0;
  bool in_epoll_ = false;

  Mutex mutex_;
  /// Responses being written, in sequence order; front may be partially
  /// sent (front_offset_ bytes of it are already on the wire).
  std::deque<FrameParts> outbound_ WALRUS_GUARDED_BY(mutex_);
  size_t front_offset_ WALRUS_GUARDED_BY(mutex_) = 0;
  size_t outbound_bytes_ WALRUS_GUARDED_BY(mutex_) = 0;
  /// Completed responses whose predecessors are still executing.
  std::map<uint64_t, FrameParts> completed_ WALRUS_GUARDED_BY(mutex_);
  uint64_t next_flush_seq_ WALRUS_GUARDED_BY(mutex_) = 0;
  int in_flight_ WALRUS_GUARDED_BY(mutex_) = 0;
  bool read_paused_ WALRUS_GUARDED_BY(mutex_) = false;
  bool close_after_flush_ WALRUS_GUARDED_BY(mutex_) = false;
  bool peer_eof_ WALRUS_GUARDED_BY(mutex_) = false;
  bool closed_ WALRUS_GUARDED_BY(mutex_) = false;
};

/// Frame-parsing callback the server implements. Invoked on the loop
/// thread whenever a connection has new buffered input; the implementation
/// consumes complete frames (ConsumeInput) and leaves partial ones for the
/// next wakeup.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void OnInput(const std::shared_ptr<ReactorConn>& conn) = 0;
};

/// One epoll event loop: owns an epoll set, an eventfd for cross-thread
/// wakeups, and the connections pinned to it. The loop thread is the only
/// thread that touches epoll, reads sockets, writes sockets, or parses
/// frames; other threads communicate through Adopt()/Notify() (lock +
/// eventfd) only.
///
/// Lifecycle: the constructor spawns the thread; teardown is a two-phase
/// drain driven by the server's Wait() -- BeginDrain() (synchronous: no
/// frame is parsed after it returns, so no new request can be dispatched),
/// then once the worker pool has drained, FinishDrain(deadline) lets the
/// loop flush every queued-but-unwritten response before closing sockets,
/// force-closing whatever a dead-slow peer has not read by the deadline.
class EventLoop {
 public:
  EventLoop(FrameSink* sink, ReactorStats* stats, ReactorOptions options);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// True when the epoll + eventfd setup succeeded and the thread runs.
  bool ok() const { return thread_.joinable(); }

  /// Hands a freshly accepted socket to this loop (any thread).
  void Adopt(UniqueFd fd) WALRUS_EXCLUDES(mutex_);

  /// Schedules `conn` for flush/interest maintenance on the loop thread
  /// (any thread; called by Respond / CloseAfterFlush).
  void Notify(std::shared_ptr<ReactorConn> conn) WALRUS_EXCLUDES(mutex_);

  /// Stops reading on every connection and blocks until the loop thread
  /// has acknowledged -- after return, no further OnInput fires.
  void BeginDrain() WALRUS_EXCLUDES(mutex_);

  /// Lets the loop flush outstanding responses and exit. The loop thread
  /// force-closes unflushed connections after `drain_deadline_ms` (from
  /// now) and terminates; Join() reaps it.
  void FinishDrain(int drain_deadline_ms) WALRUS_EXCLUDES(mutex_);

  void Join();

 private:
  void Run() WALRUS_EXCLUDES(mutex_);
  void Wake();
  void AddConnection(UniqueFd fd);
  /// Reads available bytes (up to the fairness budget) and parses.
  void HandleReadable(const std::shared_ptr<ReactorConn>& conn);
  /// Flush + epoll-interest recomputation + close-if-done for one conn.
  void UpdateConnection(const std::shared_ptr<ReactorConn>& conn);
  void CloseConnection(const std::shared_ptr<ReactorConn>& conn);

  FrameSink* const sink_;
  ReactorStats* const stats_;
  const ReactorOptions options_;

  UniqueFd epoll_fd_;
  UniqueFd wake_fd_;  // eventfd
  std::thread thread_;

  // Loop-thread-only: the connections pinned to this loop, keyed by fd.
  std::unordered_map<int, std::shared_ptr<ReactorConn>> conns_;

  Mutex mutex_;
  CondVar drain_cv_;
  std::vector<UniqueFd> intake_ WALRUS_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<ReactorConn>> wake_queue_
      WALRUS_GUARDED_BY(mutex_);
  bool draining_ WALRUS_GUARDED_BY(mutex_) = false;
  bool drain_applied_ WALRUS_GUARDED_BY(mutex_) = false;
  bool finish_drain_ WALRUS_GUARDED_BY(mutex_) = false;
  int drain_deadline_ms_ WALRUS_GUARDED_BY(mutex_) = 0;
};

}  // namespace walrus

#endif  // WALRUS_SERVER_REACTOR_H_
