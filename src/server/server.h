#ifndef WALRUS_SERVER_SERVER_H_
#define WALRUS_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "core/index.h"
#include "core/query_engine.h"
#include "server/protocol.h"
#include "server/reactor.h"

namespace walrus {

/// Server knobs.
struct ServerOptions {
  /// Numeric IPv4 address to bind (loopback by default: walrusd fronts the
  /// index for co-located clients; put a real proxy in front for the wild).
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Worker threads executing requests; 0 = hardware concurrency.
  int num_workers = 0;
  /// Reactor event-loop threads (each owns an epoll set; connections are
  /// pinned round-robin); 0 = hardware concurrency.
  int reactor_threads = 0;
  /// Admission bound: maximum requests admitted (queued + executing) at
  /// once. Requests beyond it are rejected immediately with an OVERLOADED
  /// (Unavailable) reply instead of queueing unboundedly.
  int max_pending = 128;
  /// Per-request deadline in milliseconds, measured from admission. A
  /// request still waiting in the queue when it expires is answered with
  /// DeadlineExceeded instead of executing. 0 disables.
  int deadline_ms = 0;
  /// Per-connection backpressure budget: once this many response bytes are
  /// queued but unwritten on one connection, its event loop stops reading
  /// from it (the kernel receive buffer then pushes back on the peer)
  /// until the queue drains below half the budget.
  size_t max_conn_outbound_bytes = 4u << 20;
  /// Graceful-drain bound: at shutdown, connections whose queued responses
  /// a slow peer has not read within this window are force-closed.
  int drain_timeout_ms = 5000;
  /// When > 0, cap each connection's kernel send buffer (SO_SNDBUF) to
  /// roughly this many bytes. Bounds kernel memory per slow peer and makes
  /// the outbound-queue backpressure engage predictably instead of after
  /// the kernel autotunes multi-megabyte buffers. 0 keeps the default.
  int so_sndbuf_bytes = 0;
  /// Test hook: every request handler sleeps this long before executing
  /// (makes overload/deadline/drain behaviour deterministic in tests).
  int execution_delay_ms = 0;
};

/// `walrusd`: a TCP query server exposing one shared read-only WalrusIndex
/// (in-memory or paged) to many concurrent connections over the framed
/// binary protocol in server/protocol.h.
///
/// Architecture (DESIGN.md section 15): one accept thread hands sockets to
/// a fixed set of epoll event loops (ServerOptions::reactor_threads); each
/// connection is pinned to one loop, which does all its socket I/O and
/// frame parsing on nonblocking descriptors. Decoded requests pass bounded
/// admission and execute on a shared ThreadPool; responses are queued per
/// connection and written back by the owning loop with scatter-gather
/// writes (writev), so slow peers never block a worker thread.
///
/// Pipelining: a client may keep any number of requests in flight on one
/// connection; responses come back in request order (each request claims a
/// sequence number at parse time, and completions are reordered before
/// hitting the wire). Malformed frames with an intact frame boundary (bad
/// CRC, unsupported version, unknown opcode, undecodable body) error the
/// single request and keep the connection; a lost boundary (bad magic,
/// oversized body length) errors and closes it -- after every prior
/// response has been written. The process never goes down on peer input.
///
/// Lifecycle: Start() begins serving; Wait() blocks until a stop is
/// requested (RequestStop(), a SHUTDOWN request, or Stop()) and then
/// drains gracefully -- in-flight requests finish AND every
/// queued-but-unwritten response is flushed (bounded by
/// ServerOptions::drain_timeout_ms) before connections close.
class WalrusServer : public FrameSink {
 public:
  /// `index` must outlive the server and is queried concurrently; it is
  /// never mutated. Serves through an internally owned SingleIndexEngine.
  WalrusServer(const WalrusIndex& index, ServerOptions options);

  /// Serves any query engine — this is how walrusd runs sharded
  /// (`--shards N` builds a ShardedIndex and hands it here). `engine` must
  /// outlive the server; it is queried concurrently and never mutated.
  WalrusServer(const QueryEngine& engine, ServerOptions options);

  /// Serves a mutable engine: queries go to `engine`, INSERT_IMAGE /
  /// DELETE_IMAGE go to `ingest` (the live engine implements both
  /// interfaces — `walrus_serve --wal-dir` passes the same object twice).
  /// `ingest` may be nullptr, which answers mutations with Unimplemented;
  /// otherwise it must outlive the server and support concurrent calls.
  WalrusServer(const QueryEngine& engine, IngestEngine* ingest,
               ServerOptions options);
  ~WalrusServer() override;

  WalrusServer(const WalrusServer&) = delete;
  WalrusServer& operator=(const WalrusServer&) = delete;

  /// Binds, listens, and spawns the accept thread, event loops, and
  /// worker pool.
  Status Start();

  /// The bound port (valid after Start; resolves ephemeral binds).
  uint16_t port() const { return port_; }

  /// Signals shutdown without blocking. Safe from any thread, including
  /// request handlers (the SHUTDOWN opcode uses it).
  void RequestStop() WALRUS_EXCLUDES(stop_mutex_);

  /// Blocks until a stop is requested, then tears down: stops accepting,
  /// stops reading, drains in-flight requests, flushes every queued
  /// response, and joins every thread. Call from the owning thread.
  void Wait();

  /// RequestStop() + Wait().
  void Stop();

  /// Snapshot of the counters served by the STATS opcode.
  ServerStats Snapshot() const;

 private:
  /// Latency histogram with power-of-two microsecond buckets (bucket i
  /// covers [2^i, 2^(i+1)) us). Lock-free increments; quantiles answer to
  /// bucket resolution, plenty for p50/p99 reporting.
  struct LatencyHistogram {
    static constexpr int kBuckets = 32;
    std::atomic<uint64_t> counts[kBuckets];
    void Record(double seconds);
    /// Upper edge (ms) of the bucket containing quantile `q` in [0,1].
    double QuantileMs(double q) const;
  };

  void AcceptLoop();

  /// FrameSink: parses complete frames out of `conn`'s input buffer on
  /// the owning loop thread and dispatches them. Implements the error
  /// taxonomy in the class comment.
  void OnInput(const std::shared_ptr<ReactorConn>& conn) override;

  /// Admission control + dispatch of one well-framed request.
  void DispatchRequest(const std::shared_ptr<ReactorConn>& conn,
                       const FrameHeader& header, std::vector<uint8_t> body);
  /// Executes a request on a worker thread; returns the response frame's
  /// body chunks ([status section, payload]) for sequence slot `seq`.
  void ExecuteRequest(const std::shared_ptr<ReactorConn>& conn, uint64_t seq,
                      const FrameHeader& header,
                      const std::vector<uint8_t>& body,
                      std::chrono::steady_clock::time_point admitted);
  /// Enqueues a response frame for slot `seq` (status + optional payload).
  /// `payload` is moved into the frame's scatter-gather chunks uncopied.
  void Respond(const std::shared_ptr<ReactorConn>& conn, uint64_t seq,
               const FrameHeader& header, const Status& status,
               std::vector<uint8_t> payload, bool ends_in_flight);

  /// Set only by the WalrusIndex convenience ctor; engine_ points at it.
  std::unique_ptr<SingleIndexEngine> owned_engine_;
  const QueryEngine& engine_;
  /// Mutation surface, or nullptr for a read-only server.
  IngestEngine* const ingest_ = nullptr;
  ServerOptions options_;
  uint16_t port_ = 0;

  UniqueFd listen_fd_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  /// The reactor: event loops owning epoll sets and pinned connections.
  std::vector<std::unique_ptr<EventLoop>> loops_;
  size_t next_loop_ = 0;  // accept-thread only: round-robin pinning
  ReactorStats reactor_stats_;

  Mutex stop_mutex_;
  CondVar stop_cv_;
  bool stop_requested_ WALRUS_GUARDED_BY(stop_mutex_) = false;
  std::atomic<bool> stopping_{false};
  /// Lifecycle flags, touched only by the owning thread (the one that
  /// calls Start/Wait/Stop and destroys the server) — unguarded by design.
  bool started_ = false;
  bool joined_ = false;

  std::atomic<int> pending_{0};
  std::atomic<uint64_t> requests_by_opcode_[kNumOpcodes];
  std::atomic<uint64_t> rejected_overload_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  LatencyHistogram latency_;
};

}  // namespace walrus

#endif  // WALRUS_SERVER_SERVER_H_
