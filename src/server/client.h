#ifndef WALRUS_SERVER_CLIENT_H_
#define WALRUS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/socket.h"
#include "server/protocol.h"

namespace walrus {

/// Matches + per-query diagnostics returned by a remote query.
struct RemoteQueryResult {
  std::vector<QueryMatch> matches;
  QueryStats stats;
};

/// Blocking client for walrusd: one TCP connection, one outstanding request
/// at a time (request ids still increment and are verified on every reply,
/// so a protocol desync surfaces as Corruption instead of crossed
/// responses). Not thread-safe; give each thread its own client.
class WalrusClient {
 public:
  /// Connects to a walrusd at `host:port` (numeric IPv4).
  [[nodiscard]] static Result<WalrusClient> Connect(const std::string& host,
                                                    uint16_t port);

  WalrusClient(WalrusClient&&) = default;
  WalrusClient& operator=(WalrusClient&&) = default;

  /// Round-trips an empty PING frame.
  [[nodiscard]] Status Ping();

  /// Remote ExecuteQuery: ships the query image and options, returns the
  /// server's ranked matches (bit-identical to an in-process call against
  /// the same index).
  [[nodiscard]] Result<RemoteQueryResult> Query(const ImageF& image,
                                  const QueryOptions& options);

  /// Remote ExecuteSceneQuery over the part of `image` inside `scene`.
  [[nodiscard]] Result<RemoteQueryResult> SceneQuery(const ImageF& image,
                                       const PixelRect& scene,
                                       const QueryOptions& options);

  /// Durable remote insert (v4): ships the raw image; the server extracts
  /// regions and indexes them under `image_id`. OK means the mutation is
  /// on disk. Unimplemented against a read-only server.
  [[nodiscard]] Status InsertImage(uint64_t image_id, const std::string& name,
                                   const ImageF& image);

  /// Durable remote delete (v4). NotFound when `image_id` is not live.
  [[nodiscard]] Status DeleteImage(uint64_t image_id);

  /// Fetches the server's counters.
  [[nodiscard]] Result<ServerStats> Stats();

  /// Fetches the server process's metrics-registry snapshot (every counter,
  /// gauge, and histogram on the query path).
  [[nodiscard]] Result<MetricsSnapshot> Metrics();

  /// Asks the server to shut down gracefully (it drains in-flight requests
  /// before exiting). OK means the server acknowledged.
  [[nodiscard]] Status Shutdown();

 private:
  explicit WalrusClient(UniqueFd fd) : fd_(std::move(fd)) {}

  /// Sends one request frame and returns the response body after the
  /// frame-level checks (CRC, request id echo) and the embedded status
  /// section have both passed.
  [[nodiscard]] Result<std::vector<uint8_t>> RoundTrip(Opcode opcode,
                                         const std::vector<uint8_t>& body);

  [[nodiscard]] Result<RemoteQueryResult> RunQuery(Opcode opcode,
                                                   const ImageF& image,
                                     const PixelRect* scene,
                                     const QueryOptions& options);

  UniqueFd fd_;
  uint64_t next_request_id_ = 1;
};

}  // namespace walrus

#endif  // WALRUS_SERVER_CLIENT_H_
