#ifndef WALRUS_SERVER_CLIENT_H_
#define WALRUS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/socket.h"
#include "server/protocol.h"

namespace walrus {

/// Matches + per-query diagnostics returned by a remote query.
struct RemoteQueryResult {
  std::vector<QueryMatch> matches;
  QueryStats stats;
};

/// One response frame received off a pipelined connection: the echoed
/// request id (match it to the Send* return value), the server's embedded
/// status, and the payload that follows it (empty unless status is OK).
struct RemoteResponse {
  uint64_t request_id = 0;
  Opcode opcode = Opcode::kPing;
  Status status;
  std::vector<uint8_t> payload;
};

/// Blocking client for walrusd over one TCP connection. Two usage modes:
///
/// - Lockstep: the named calls (Ping, Query, Stats, ...) send one request
///   and block for its reply, verifying the request-id echo.
/// - Pipelined: Send* enqueues a request frame and returns immediately
///   with its request id; ReceiveResponse() blocks for the next response
///   frame. The server guarantees responses come back in request order,
///   so interleaving K Send* calls with K ReceiveResponse() calls gets K
///   requests executing concurrently over one connection.
///
/// Not thread-safe; give each thread its own client.
class WalrusClient {
 public:
  /// Connects to a walrusd at `host:port` (numeric IPv4).
  [[nodiscard]] static Result<WalrusClient> Connect(const std::string& host,
                                                    uint16_t port);

  WalrusClient(WalrusClient&&) = default;
  WalrusClient& operator=(WalrusClient&&) = default;

  /// Round-trips an empty PING frame.
  [[nodiscard]] Status Ping();

  /// Remote ExecuteQuery: ships the query image and options, returns the
  /// server's ranked matches (bit-identical to an in-process call against
  /// the same index).
  [[nodiscard]] Result<RemoteQueryResult> Query(const ImageF& image,
                                  const QueryOptions& options);

  /// Remote ExecuteSceneQuery over the part of `image` inside `scene`.
  [[nodiscard]] Result<RemoteQueryResult> SceneQuery(const ImageF& image,
                                       const PixelRect& scene,
                                       const QueryOptions& options);

  /// Durable remote insert (v4): ships the raw image; the server extracts
  /// regions and indexes them under `image_id`. OK means the mutation is
  /// on disk. Unimplemented against a read-only server.
  [[nodiscard]] Status InsertImage(uint64_t image_id, const std::string& name,
                                   const ImageF& image);

  /// Durable remote delete (v4). NotFound when `image_id` is not live.
  [[nodiscard]] Status DeleteImage(uint64_t image_id);

  /// Fetches the server's counters.
  [[nodiscard]] Result<ServerStats> Stats();

  /// Fetches the server process's metrics-registry snapshot (every counter,
  /// gauge, and histogram on the query path).
  [[nodiscard]] Result<MetricsSnapshot> Metrics();

  /// Asks the server to shut down gracefully (it drains in-flight requests
  /// before exiting). OK means the server acknowledged.
  [[nodiscard]] Status Shutdown();

  // ---- Pipelining surface -----------------------------------------------

  /// Each Send* writes one request frame and returns its request id
  /// without waiting for the reply; pair with ReceiveResponse().
  [[nodiscard]] Result<uint64_t> SendPing();
  [[nodiscard]] Result<uint64_t> SendQuery(const ImageF& image,
                                           const QueryOptions& options);
  [[nodiscard]] Result<uint64_t> SendSceneQuery(const ImageF& image,
                                                const PixelRect& scene,
                                                const QueryOptions& options);
  [[nodiscard]] Result<uint64_t> SendStats();
  [[nodiscard]] Result<uint64_t> SendInsertImage(uint64_t image_id,
                                                 const std::string& name,
                                                 const ImageF& image);
  [[nodiscard]] Result<uint64_t> SendDeleteImage(uint64_t image_id);

  /// Blocks for the next response frame on the wire. Frame-level failures
  /// (CRC mismatch, truncated stream) fail the call; the server's own
  /// status for the request lands in RemoteResponse::status, so an
  /// OVERLOADED or error reply is still a successful receive.
  [[nodiscard]] Result<RemoteResponse> ReceiveResponse();

  /// Decodes a QUERY/SCENE_QUERY response payload.
  [[nodiscard]] static Result<RemoteQueryResult> ParseQueryResult(
      const RemoteResponse& response);

  /// Convenience: ships every query back-to-back, then collects the
  /// responses — N queries for one connection's round-trip latency.
  /// Responses are verified to come back in request order.
  [[nodiscard]] Result<std::vector<RemoteQueryResult>> QueryPipelined(
      const std::vector<ImageF>& images, const QueryOptions& options);

 private:
  explicit WalrusClient(UniqueFd fd) : fd_(std::move(fd)) {}

  /// Writes one request frame; returns its request id.
  [[nodiscard]] Result<uint64_t> Send(Opcode opcode,
                                      const std::vector<uint8_t>& body);

  /// Sends one request frame and returns the response body after the
  /// frame-level checks (CRC, request id echo) and the embedded status
  /// section have both passed.
  [[nodiscard]] Result<std::vector<uint8_t>> RoundTrip(Opcode opcode,
                                         const std::vector<uint8_t>& body);

  [[nodiscard]] Result<RemoteQueryResult> RunQuery(Opcode opcode,
                                                   const ImageF& image,
                                     const PixelRect* scene,
                                     const QueryOptions& options);

  UniqueFd fd_;
  uint64_t next_request_id_ = 1;
};

}  // namespace walrus

#endif  // WALRUS_SERVER_CLIENT_H_
