#include "server/protocol.h"

#include "common/crc32.h"

namespace walrus {
namespace {

uint32_t ReadU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t ReadU64Le(const uint8_t* p) {
  return static_cast<uint64_t>(ReadU32Le(p)) |
         static_cast<uint64_t>(ReadU32Le(p + 4)) << 32;
}

}  // namespace

const char* OpcodeName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kPing:
      return "PING";
    case Opcode::kQuery:
      return "QUERY";
    case Opcode::kSceneQuery:
      return "SCENE_QUERY";
    case Opcode::kStats:
      return "STATS";
    case Opcode::kShutdown:
      return "SHUTDOWN";
    case Opcode::kMetrics:
      return "METRICS";
    case Opcode::kInsertImage:
      return "INSERT_IMAGE";
    case Opcode::kDeleteImage:
      return "DELETE_IMAGE";
  }
  return "UNKNOWN";
}

std::vector<uint8_t> EncodeFrame(Opcode opcode, uint64_t request_id,
                                 const std::vector<uint8_t>& body,
                                 uint8_t version) {
  BinaryWriter writer;
  writer.PutU32(kProtocolMagic);
  writer.PutU8(version);
  writer.PutU8(static_cast<uint8_t>(opcode));
  writer.PutU16(0);  // reserved
  writer.PutU64(request_id);
  writer.PutU32(static_cast<uint32_t>(body.size()));
  if (!body.empty()) writer.PutBytes(body.data(), body.size());
  std::vector<uint8_t> frame = writer.TakeBuffer();
  uint32_t crc = Crc32(frame.data(), frame.size());
  frame.push_back(static_cast<uint8_t>(crc));
  frame.push_back(static_cast<uint8_t>(crc >> 8));
  frame.push_back(static_cast<uint8_t>(crc >> 16));
  frame.push_back(static_cast<uint8_t>(crc >> 24));
  return frame;
}

FrameParts MakeFrameParts(Opcode opcode, uint64_t request_id,
                          std::vector<std::vector<uint8_t>> body_chunks,
                          uint8_t version) {
  FrameParts parts;
  parts.body = std::move(body_chunks);
  size_t body_bytes = 0;
  for (const std::vector<uint8_t>& chunk : parts.body) {
    body_bytes += chunk.size();
  }

  uint8_t* h = parts.header.data();
  h[0] = static_cast<uint8_t>(kProtocolMagic);
  h[1] = static_cast<uint8_t>(kProtocolMagic >> 8);
  h[2] = static_cast<uint8_t>(kProtocolMagic >> 16);
  h[3] = static_cast<uint8_t>(kProtocolMagic >> 24);
  h[4] = version;
  h[5] = static_cast<uint8_t>(opcode);
  h[6] = 0;  // reserved
  h[7] = 0;
  for (int i = 0; i < 8; ++i) {
    h[8 + i] = static_cast<uint8_t>(request_id >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    h[16 + i] = static_cast<uint8_t>(body_bytes >> (8 * i));
  }

  uint32_t crc = Crc32Extend(0, parts.header.data(), kFrameHeaderBytes);
  for (const std::vector<uint8_t>& chunk : parts.body) {
    crc = Crc32Extend(crc, chunk.data(), chunk.size());
  }
  for (int i = 0; i < 4; ++i) {
    parts.trailer[i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  return parts;
}

Status DecodeFrameHeader(const uint8_t* data, FrameHeader* out) {
  if (ReadU32Le(data) != kProtocolMagic) {
    return Status::Corruption("frame: bad magic");
  }
  out->version = data[4];
  out->opcode = static_cast<Opcode>(data[5]);
  out->request_id = ReadU64Le(data + 8);
  out->body_length = ReadU32Le(data + 16);
  if (out->version < kMinSupportedProtocolVersion ||
      out->version > kProtocolVersion) {
    return Status::InvalidArgument("frame: unsupported protocol version " +
                                   std::to_string(out->version));
  }
  if (out->body_length > kMaxBodyBytes) {
    return Status::InvalidArgument("frame: body length " +
                                   std::to_string(out->body_length) +
                                   " exceeds limit");
  }
  return Status::OK();
}

uint32_t FrameCrc(const uint8_t* header, const std::vector<uint8_t>& body) {
  uint32_t crc = Crc32Extend(0, header, kFrameHeaderBytes);
  return Crc32Extend(crc, body.data(), body.size());
}

void EncodeResponseStatus(const Status& status, BinaryWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(status.code()));
  writer->PutString(status.message());
}

Status DecodeResponseStatus(BinaryReader* reader, Status* remote) {
  WALRUS_ASSIGN_OR_RETURN(uint8_t code, reader->GetU8());
  if (code >= kNumStatusCodes) {
    return Status::Corruption("response: unknown status code " +
                              std::to_string(code));
  }
  WALRUS_ASSIGN_OR_RETURN(std::string message, reader->GetString());
  *remote = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

void EncodeQueryOptions(const QueryOptions& options, BinaryWriter* writer,
                        uint8_t version) {
  writer->PutFloat(options.epsilon);
  writer->PutDouble(options.tau);
  writer->PutU8(static_cast<uint8_t>(options.matcher));
  writer->PutU8(static_cast<uint8_t>(options.normalization));
  writer->PutI32(options.knn_per_region);
  writer->PutU8(options.use_refinement ? 1 : 0);
  writer->PutFloat(options.refined_epsilon);
  writer->PutI32(options.top_k);
  writer->PutU8(options.collect_pairs ? 1 : 0);
  writer->PutU8(options.collect_trace ? 1 : 0);
  if (version >= 5) {
    writer->PutU8(options.batched_probe ? 1 : 0);
    writer->PutU8(options.signature_prefilter ? 1 : 0);
  }
}

Result<QueryOptions> DecodeQueryOptions(BinaryReader* reader,
                                        uint8_t version) {
  QueryOptions options;
  WALRUS_ASSIGN_OR_RETURN(options.epsilon, reader->GetFloat());
  WALRUS_ASSIGN_OR_RETURN(options.tau, reader->GetDouble());
  WALRUS_ASSIGN_OR_RETURN(uint8_t matcher, reader->GetU8());
  if (matcher > static_cast<uint8_t>(MatcherKind::kGreedy)) {
    return Status::InvalidArgument("options: unknown matcher " +
                                   std::to_string(matcher));
  }
  options.matcher = static_cast<MatcherKind>(matcher);
  WALRUS_ASSIGN_OR_RETURN(uint8_t norm, reader->GetU8());
  if (norm > static_cast<uint8_t>(SimilarityNormalization::kSmallerImage)) {
    return Status::InvalidArgument("options: unknown normalization " +
                                   std::to_string(norm));
  }
  options.normalization = static_cast<SimilarityNormalization>(norm);
  WALRUS_ASSIGN_OR_RETURN(options.knn_per_region, reader->GetI32());
  WALRUS_ASSIGN_OR_RETURN(uint8_t refine, reader->GetU8());
  options.use_refinement = refine != 0;
  WALRUS_ASSIGN_OR_RETURN(options.refined_epsilon, reader->GetFloat());
  WALRUS_ASSIGN_OR_RETURN(options.top_k, reader->GetI32());
  WALRUS_ASSIGN_OR_RETURN(uint8_t pairs, reader->GetU8());
  options.collect_pairs = pairs != 0;
  WALRUS_ASSIGN_OR_RETURN(uint8_t trace, reader->GetU8());
  options.collect_trace = trace != 0;
  if (version >= 5) {
    WALRUS_ASSIGN_OR_RETURN(uint8_t batched, reader->GetU8());
    options.batched_probe = batched != 0;
    WALRUS_ASSIGN_OR_RETURN(uint8_t prefilter, reader->GetU8());
    options.signature_prefilter = prefilter != 0;
  }
  // Older peers do not transmit the v5 knobs; this side's defaults apply.
  return options;
}

void EncodeImage(const ImageF& image, BinaryWriter* writer) {
  writer->PutU32(static_cast<uint32_t>(image.width()));
  writer->PutU32(static_cast<uint32_t>(image.height()));
  writer->PutU32(static_cast<uint32_t>(image.channels()));
  writer->PutU8(static_cast<uint8_t>(image.color_space()));
  for (int c = 0; c < image.channels(); ++c) {
    writer->PutFloatVector(image.Plane(c));
  }
}

Result<ImageF> DecodeImage(BinaryReader* reader) {
  WALRUS_ASSIGN_OR_RETURN(uint32_t width, reader->GetU32());
  WALRUS_ASSIGN_OR_RETURN(uint32_t height, reader->GetU32());
  WALRUS_ASSIGN_OR_RETURN(uint32_t channels, reader->GetU32());
  WALRUS_ASSIGN_OR_RETURN(uint8_t cs, reader->GetU8());
  if (width == 0 || height == 0 || width > kMaxImageSide ||
      height > kMaxImageSide) {
    return Status::InvalidArgument("image: bad dimensions " +
                                   std::to_string(width) + "x" +
                                   std::to_string(height));
  }
  if (channels == 0 || channels > 4) {
    return Status::InvalidArgument("image: bad channel count " +
                                   std::to_string(channels));
  }
  if (cs > static_cast<uint8_t>(ColorSpace::kHSV)) {
    return Status::InvalidArgument("image: unknown color space " +
                                   std::to_string(cs));
  }
  // Each plane costs width*height*4 bytes on the wire; refuse before
  // allocating when the buffer cannot possibly hold it.
  uint64_t plane_bytes = static_cast<uint64_t>(width) * height * 4;
  if (plane_bytes * channels > reader->remaining()) {
    return Status::Corruption("image: truncated planes");
  }
  ImageF image(static_cast<int>(width), static_cast<int>(height),
               static_cast<int>(channels), static_cast<ColorSpace>(cs));
  for (uint32_t c = 0; c < channels; ++c) {
    WALRUS_ASSIGN_OR_RETURN(std::vector<float> plane,
                            reader->GetFloatVector());
    if (plane.size() != static_cast<size_t>(width) * height) {
      return Status::Corruption("image: plane size mismatch");
    }
    image.Plane(static_cast<int>(c)) = std::move(plane);
  }
  return image;
}

void EncodePixelRect(const PixelRect& rect, BinaryWriter* writer) {
  writer->PutI32(rect.x);
  writer->PutI32(rect.y);
  writer->PutI32(rect.width);
  writer->PutI32(rect.height);
}

Result<PixelRect> DecodePixelRect(BinaryReader* reader) {
  PixelRect rect;
  WALRUS_ASSIGN_OR_RETURN(rect.x, reader->GetI32());
  WALRUS_ASSIGN_OR_RETURN(rect.y, reader->GetI32());
  WALRUS_ASSIGN_OR_RETURN(rect.width, reader->GetI32());
  WALRUS_ASSIGN_OR_RETURN(rect.height, reader->GetI32());
  return rect;
}

void EncodeMatches(const std::vector<QueryMatch>& matches,
                   BinaryWriter* writer) {
  writer->PutU32(static_cast<uint32_t>(matches.size()));
  for (const QueryMatch& m : matches) {
    writer->PutU64(m.image_id);
    writer->PutDouble(m.similarity);
    writer->PutI32(m.matching_pairs);
    writer->PutI32(m.pairs_used);
    writer->PutU32(static_cast<uint32_t>(m.pairs.size()));
    for (const RegionPair& pair : m.pairs) {
      writer->PutI32(pair.query_index);
      writer->PutI32(pair.target_index);
    }
  }
}

Result<std::vector<QueryMatch>> DecodeMatches(BinaryReader* reader) {
  WALRUS_ASSIGN_OR_RETURN(uint32_t count, reader->GetU32());
  // Each match is >= 24 bytes on the wire; a count that implies more data
  // than remains is corruption, not an allocation request.
  if (static_cast<uint64_t>(count) * 24 > reader->remaining()) {
    return Status::Corruption("matches: truncated list");
  }
  std::vector<QueryMatch> matches;
  matches.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    QueryMatch m;
    WALRUS_ASSIGN_OR_RETURN(m.image_id, reader->GetU64());
    WALRUS_ASSIGN_OR_RETURN(m.similarity, reader->GetDouble());
    WALRUS_ASSIGN_OR_RETURN(m.matching_pairs, reader->GetI32());
    WALRUS_ASSIGN_OR_RETURN(m.pairs_used, reader->GetI32());
    WALRUS_ASSIGN_OR_RETURN(uint32_t pair_count, reader->GetU32());
    if (static_cast<uint64_t>(pair_count) * 8 > reader->remaining()) {
      return Status::Corruption("matches: truncated pair list");
    }
    m.pairs.reserve(pair_count);
    for (uint32_t p = 0; p < pair_count; ++p) {
      RegionPair pair;
      WALRUS_ASSIGN_OR_RETURN(pair.query_index, reader->GetI32());
      WALRUS_ASSIGN_OR_RETURN(pair.target_index, reader->GetI32());
      m.pairs.push_back(pair);
    }
    matches.push_back(std::move(m));
  }
  return matches;
}

void EncodeQueryStats(const QueryStats& stats, BinaryWriter* writer,
                      uint8_t version) {
  writer->PutI32(stats.query_regions);
  writer->PutI64(stats.regions_retrieved);
  writer->PutDouble(stats.avg_regions_per_query_region);
  writer->PutI32(stats.distinct_images);
  writer->PutDouble(stats.seconds);
  writer->PutDouble(stats.extract_seconds);
  writer->PutDouble(stats.probe_seconds);
  writer->PutDouble(stats.match_seconds);
  writer->PutDouble(stats.rank_seconds);
  writer->PutI64(stats.nodes_visited);
  writer->PutI64(stats.pages_read);
  writer->PutI64(stats.cache_hits);
  writer->PutI64(stats.cache_misses);
  writer->PutU8(stats.result_cache_hit ? 1 : 0);
  EncodeTraceSpans(stats.spans, writer);
  // v5 fields ride after the span tree so the v4 prefix is byte-identical.
  if (version >= 5) {
    writer->PutDouble(stats.filter_seconds);
    writer->PutI64(stats.prefilter_candidates_in);
    writer->PutI64(stats.prefilter_pruned);
    writer->PutI64(stats.prefilter_candidates_out);
  }
}

Result<QueryStats> DecodeQueryStats(BinaryReader* reader, uint8_t version) {
  QueryStats stats;
  WALRUS_ASSIGN_OR_RETURN(stats.query_regions, reader->GetI32());
  WALRUS_ASSIGN_OR_RETURN(stats.regions_retrieved, reader->GetI64());
  WALRUS_ASSIGN_OR_RETURN(stats.avg_regions_per_query_region,
                          reader->GetDouble());
  WALRUS_ASSIGN_OR_RETURN(stats.distinct_images, reader->GetI32());
  WALRUS_ASSIGN_OR_RETURN(stats.seconds, reader->GetDouble());
  WALRUS_ASSIGN_OR_RETURN(stats.extract_seconds, reader->GetDouble());
  WALRUS_ASSIGN_OR_RETURN(stats.probe_seconds, reader->GetDouble());
  WALRUS_ASSIGN_OR_RETURN(stats.match_seconds, reader->GetDouble());
  WALRUS_ASSIGN_OR_RETURN(stats.rank_seconds, reader->GetDouble());
  WALRUS_ASSIGN_OR_RETURN(stats.nodes_visited, reader->GetI64());
  WALRUS_ASSIGN_OR_RETURN(stats.pages_read, reader->GetI64());
  WALRUS_ASSIGN_OR_RETURN(stats.cache_hits, reader->GetI64());
  WALRUS_ASSIGN_OR_RETURN(stats.cache_misses, reader->GetI64());
  WALRUS_ASSIGN_OR_RETURN(uint8_t cache_hit, reader->GetU8());
  stats.result_cache_hit = cache_hit != 0;
  WALRUS_ASSIGN_OR_RETURN(stats.spans, DecodeTraceSpans(reader));
  if (version >= 5) {
    WALRUS_ASSIGN_OR_RETURN(stats.filter_seconds, reader->GetDouble());
    WALRUS_ASSIGN_OR_RETURN(stats.prefilter_candidates_in, reader->GetI64());
    WALRUS_ASSIGN_OR_RETURN(stats.prefilter_pruned, reader->GetI64());
    WALRUS_ASSIGN_OR_RETURN(stats.prefilter_candidates_out, reader->GetI64());
  }
  return stats;
}

namespace {

void EncodeSpanList(const std::vector<TraceSpan>& spans,
                    BinaryWriter* writer) {
  writer->PutU32(static_cast<uint32_t>(spans.size()));
  for (const TraceSpan& span : spans) {
    writer->PutString(span.name);
    writer->PutDouble(span.start_seconds);
    writer->PutDouble(span.duration_seconds);
    EncodeSpanList(span.children, writer);
  }
}

Result<std::vector<TraceSpan>> DecodeSpanList(BinaryReader* reader,
                                              int depth) {
  if (depth > kMaxTraceDepth) {
    return Status::Corruption("trace: span nesting exceeds depth limit");
  }
  WALRUS_ASSIGN_OR_RETURN(uint32_t count, reader->GetU32());
  // Each span is >= 24 bytes on the wire (name length + two doubles +
  // child count); refuse impossible counts before reserving.
  if (static_cast<uint64_t>(count) * 24 > reader->remaining()) {
    return Status::Corruption("trace: truncated span list");
  }
  std::vector<TraceSpan> spans;
  spans.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TraceSpan span;
    WALRUS_ASSIGN_OR_RETURN(span.name, reader->GetString());
    WALRUS_ASSIGN_OR_RETURN(span.start_seconds, reader->GetDouble());
    WALRUS_ASSIGN_OR_RETURN(span.duration_seconds, reader->GetDouble());
    WALRUS_ASSIGN_OR_RETURN(span.children, DecodeSpanList(reader, depth + 1));
    spans.push_back(std::move(span));
  }
  return spans;
}

}  // namespace

void EncodeTraceSpans(const std::vector<TraceSpan>& spans,
                      BinaryWriter* writer) {
  EncodeSpanList(spans, writer);
}

Result<std::vector<TraceSpan>> DecodeTraceSpans(BinaryReader* reader) {
  return DecodeSpanList(reader, 0);
}

void EncodeMetricsSnapshot(const MetricsSnapshot& snapshot,
                           BinaryWriter* writer) {
  writer->PutU32(static_cast<uint32_t>(snapshot.metrics.size()));
  for (const MetricValue& m : snapshot.metrics) {
    writer->PutString(m.name);
    writer->PutU8(static_cast<uint8_t>(m.type));
    switch (m.type) {
      case MetricType::kCounter:
        writer->PutU64(m.counter);
        break;
      case MetricType::kGauge:
        writer->PutI64(m.gauge);
        break;
      case MetricType::kHistogram:
        writer->PutU32(static_cast<uint32_t>(m.bounds.size()));
        for (double b : m.bounds) writer->PutDouble(b);
        for (uint64_t c : m.bucket_counts) writer->PutU64(c);
        writer->PutU64(m.count);
        writer->PutDouble(m.sum);
        break;
    }
  }
}

Result<MetricsSnapshot> DecodeMetricsSnapshot(BinaryReader* reader) {
  WALRUS_ASSIGN_OR_RETURN(uint32_t count, reader->GetU32());
  // Each metric is >= 13 bytes (name length + type + smallest value).
  if (static_cast<uint64_t>(count) * 13 > reader->remaining()) {
    return Status::Corruption("metrics: truncated snapshot");
  }
  MetricsSnapshot snapshot;
  snapshot.metrics.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    MetricValue m;
    WALRUS_ASSIGN_OR_RETURN(m.name, reader->GetString());
    WALRUS_ASSIGN_OR_RETURN(uint8_t type, reader->GetU8());
    if (type > static_cast<uint8_t>(MetricType::kHistogram)) {
      return Status::Corruption("metrics: unknown metric type " +
                                std::to_string(type));
    }
    m.type = static_cast<MetricType>(type);
    switch (m.type) {
      case MetricType::kCounter: {
        WALRUS_ASSIGN_OR_RETURN(m.counter, reader->GetU64());
        break;
      }
      case MetricType::kGauge: {
        WALRUS_ASSIGN_OR_RETURN(m.gauge, reader->GetI64());
        break;
      }
      case MetricType::kHistogram: {
        WALRUS_ASSIGN_OR_RETURN(uint32_t num_bounds, reader->GetU32());
        // bounds doubles + (bounds + 1) count u64s must still fit.
        uint64_t needed = static_cast<uint64_t>(num_bounds) * 16 + 8;
        if (needed > reader->remaining()) {
          return Status::Corruption("metrics: truncated histogram");
        }
        m.bounds.reserve(num_bounds);
        for (uint32_t b = 0; b < num_bounds; ++b) {
          WALRUS_ASSIGN_OR_RETURN(double bound, reader->GetDouble());
          m.bounds.push_back(bound);
        }
        m.bucket_counts.reserve(num_bounds + 1);
        for (uint32_t b = 0; b < num_bounds + 1; ++b) {
          WALRUS_ASSIGN_OR_RETURN(uint64_t c, reader->GetU64());
          m.bucket_counts.push_back(c);
        }
        WALRUS_ASSIGN_OR_RETURN(m.count, reader->GetU64());
        WALRUS_ASSIGN_OR_RETURN(m.sum, reader->GetDouble());
        break;
      }
    }
    snapshot.metrics.push_back(std::move(m));
  }
  return snapshot;
}

void EncodeServerStats(const ServerStats& stats, BinaryWriter* writer,
                       uint8_t version) {
  writer->PutU32(kNumOpcodes);
  for (uint64_t count : stats.requests_by_opcode) writer->PutU64(count);
  writer->PutU64(stats.rejected_overload);
  writer->PutU64(stats.deadline_exceeded);
  writer->PutU64(stats.protocol_errors);
  writer->PutU64(stats.bytes_in);
  writer->PutU64(stats.bytes_out);
  writer->PutU64(stats.connections_accepted);
  writer->PutDouble(stats.latency_p50_ms);
  writer->PutDouble(stats.latency_p99_ms);
  writer->PutU32(stats.num_shards);
  writer->PutU32(static_cast<uint32_t>(stats.shard_probes.size()));
  for (uint64_t probes : stats.shard_probes) writer->PutU64(probes);
  writer->PutU64(stats.result_cache_hits);
  writer->PutU64(stats.result_cache_misses);
  writer->PutU64(stats.result_cache_entries);
  writer->PutU64(stats.result_cache_capacity);
  writer->PutU8(stats.has_ingest ? 1 : 0);
  if (stats.has_ingest) {
    writer->PutU64(stats.ingest.inserts);
    writer->PutU64(stats.ingest.deletes);
    writer->PutU64(stats.ingest.merges);
    writer->PutU64(stats.ingest.delta_images);
    writer->PutU64(stats.ingest.tombstones);
    writer->PutU64(stats.ingest.wal_records);
    writer->PutU64(stats.ingest.wal_bytes);
    writer->PutU64(stats.ingest.wal_syncs);
    writer->PutU64(stats.ingest.wal_synced_lsn);
    writer->PutU64(stats.ingest.wal_file_bytes);
  }
  if (version >= 5) {
    writer->PutU64(stats.prefilter_candidates_in);
    writer->PutU64(stats.prefilter_pruned);
    writer->PutU64(stats.prefilter_candidates_out);
  }
}

Result<ServerStats> DecodeServerStats(BinaryReader* reader,
                                      uint8_t version) {
  ServerStats stats;
  WALRUS_ASSIGN_OR_RETURN(uint32_t opcodes, reader->GetU32());
  if (opcodes != kNumOpcodes) {
    return Status::Corruption("server stats: opcode count mismatch");
  }
  for (int i = 0; i < kNumOpcodes; ++i) {
    WALRUS_ASSIGN_OR_RETURN(stats.requests_by_opcode[i], reader->GetU64());
  }
  WALRUS_ASSIGN_OR_RETURN(stats.rejected_overload, reader->GetU64());
  WALRUS_ASSIGN_OR_RETURN(stats.deadline_exceeded, reader->GetU64());
  WALRUS_ASSIGN_OR_RETURN(stats.protocol_errors, reader->GetU64());
  WALRUS_ASSIGN_OR_RETURN(stats.bytes_in, reader->GetU64());
  WALRUS_ASSIGN_OR_RETURN(stats.bytes_out, reader->GetU64());
  WALRUS_ASSIGN_OR_RETURN(stats.connections_accepted, reader->GetU64());
  WALRUS_ASSIGN_OR_RETURN(stats.latency_p50_ms, reader->GetDouble());
  WALRUS_ASSIGN_OR_RETURN(stats.latency_p99_ms, reader->GetDouble());
  WALRUS_ASSIGN_OR_RETURN(stats.num_shards, reader->GetU32());
  WALRUS_ASSIGN_OR_RETURN(uint32_t num_probe_entries, reader->GetU32());
  // One probe counter per shard; refuse implausible counts before
  // reserving (same discipline as the span decoder).
  if (num_probe_entries > 4096 ||
      static_cast<uint64_t>(num_probe_entries) * 8 > reader->remaining()) {
    return Status::Corruption("server stats: truncated shard probe list");
  }
  stats.shard_probes.reserve(num_probe_entries);
  for (uint32_t i = 0; i < num_probe_entries; ++i) {
    WALRUS_ASSIGN_OR_RETURN(uint64_t probes, reader->GetU64());
    stats.shard_probes.push_back(probes);
  }
  WALRUS_ASSIGN_OR_RETURN(stats.result_cache_hits, reader->GetU64());
  WALRUS_ASSIGN_OR_RETURN(stats.result_cache_misses, reader->GetU64());
  WALRUS_ASSIGN_OR_RETURN(stats.result_cache_entries, reader->GetU64());
  WALRUS_ASSIGN_OR_RETURN(stats.result_cache_capacity, reader->GetU64());
  WALRUS_ASSIGN_OR_RETURN(uint8_t has_ingest, reader->GetU8());
  if (has_ingest > 1) {
    return Status::Corruption("server stats: bad ingest presence flag " +
                              std::to_string(has_ingest));
  }
  stats.has_ingest = has_ingest != 0;
  if (stats.has_ingest) {
    WALRUS_ASSIGN_OR_RETURN(stats.ingest.inserts, reader->GetU64());
    WALRUS_ASSIGN_OR_RETURN(stats.ingest.deletes, reader->GetU64());
    WALRUS_ASSIGN_OR_RETURN(stats.ingest.merges, reader->GetU64());
    WALRUS_ASSIGN_OR_RETURN(stats.ingest.delta_images, reader->GetU64());
    WALRUS_ASSIGN_OR_RETURN(stats.ingest.tombstones, reader->GetU64());
    WALRUS_ASSIGN_OR_RETURN(stats.ingest.wal_records, reader->GetU64());
    WALRUS_ASSIGN_OR_RETURN(stats.ingest.wal_bytes, reader->GetU64());
    WALRUS_ASSIGN_OR_RETURN(stats.ingest.wal_syncs, reader->GetU64());
    WALRUS_ASSIGN_OR_RETURN(stats.ingest.wal_synced_lsn, reader->GetU64());
    WALRUS_ASSIGN_OR_RETURN(stats.ingest.wal_file_bytes, reader->GetU64());
  }
  if (version >= 5) {
    WALRUS_ASSIGN_OR_RETURN(stats.prefilter_candidates_in, reader->GetU64());
    WALRUS_ASSIGN_OR_RETURN(stats.prefilter_pruned, reader->GetU64());
    WALRUS_ASSIGN_OR_RETURN(stats.prefilter_candidates_out, reader->GetU64());
  }
  return stats;
}

}  // namespace walrus
