#include "server/client.h"
#include "common/status.h"

namespace walrus {

Result<WalrusClient> WalrusClient::Connect(const std::string& host,
                                           uint16_t port) {
  WALRUS_ASSIGN_OR_RETURN(UniqueFd fd, ConnectTcp(host, port));
  return WalrusClient(std::move(fd));
}

Result<uint64_t> WalrusClient::Send(Opcode opcode,
                                    const std::vector<uint8_t>& body) {
  uint64_t request_id = next_request_id_++;
  std::vector<uint8_t> frame = EncodeFrame(opcode, request_id, body);
  WALRUS_RETURN_IF_ERROR(WriteFull(fd_.get(), frame.data(), frame.size()));
  return request_id;
}

Result<RemoteResponse> WalrusClient::ReceiveResponse() {
  std::vector<uint8_t> header_bytes(kFrameHeaderBytes);
  WALRUS_RETURN_IF_ERROR(
      ReadFull(fd_.get(), header_bytes.data(), header_bytes.size()));
  FrameHeader header;
  WALRUS_RETURN_IF_ERROR(DecodeFrameHeader(header_bytes.data(), &header));
  std::vector<uint8_t> response(header.body_length);
  if (header.body_length > 0) {
    WALRUS_RETURN_IF_ERROR(
        ReadFull(fd_.get(), response.data(), response.size()));
  }
  uint8_t trailer[kFrameTrailerBytes];
  WALRUS_RETURN_IF_ERROR(ReadFull(fd_.get(), trailer, sizeof(trailer)));
  uint32_t stored = static_cast<uint32_t>(trailer[0]) |
                    static_cast<uint32_t>(trailer[1]) << 8 |
                    static_cast<uint32_t>(trailer[2]) << 16 |
                    static_cast<uint32_t>(trailer[3]) << 24;
  if (stored != FrameCrc(header_bytes.data(), response)) {
    return Status::Corruption("client: response CRC mismatch");
  }

  RemoteResponse out;
  out.request_id = header.request_id;
  out.opcode = header.opcode;
  BinaryReader reader(response);
  WALRUS_RETURN_IF_ERROR(DecodeResponseStatus(&reader, &out.status));
  if (out.status.ok()) {
    out.payload.assign(response.begin() + reader.position(), response.end());
  }
  return out;
}

Result<std::vector<uint8_t>> WalrusClient::RoundTrip(
    Opcode opcode, const std::vector<uint8_t>& body) {
  WALRUS_ASSIGN_OR_RETURN(uint64_t request_id, Send(opcode, body));
  WALRUS_ASSIGN_OR_RETURN(RemoteResponse response, ReceiveResponse());
  if (response.request_id != request_id) {
    return Status::Corruption(
        "client: response id " + std::to_string(response.request_id) +
        " does not match request id " + std::to_string(request_id));
  }
  WALRUS_RETURN_IF_ERROR(response.status);
  return std::move(response.payload);
}

Status WalrusClient::Ping() {
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          RoundTrip(Opcode::kPing, {}));
  (void)payload;
  return Status::OK();
}

namespace {

std::vector<uint8_t> EncodeQueryBody(const ImageF& image,
                                     const PixelRect* scene,
                                     const QueryOptions& options) {
  BinaryWriter body;
  EncodeQueryOptions(options, &body);
  if (scene != nullptr) EncodePixelRect(*scene, &body);
  EncodeImage(image, &body);
  return body.TakeBuffer();
}

}  // namespace

Result<RemoteQueryResult> WalrusClient::RunQuery(Opcode opcode,
                                                 const ImageF& image,
                                                 const PixelRect* scene,
                                                 const QueryOptions& options) {
  WALRUS_ASSIGN_OR_RETURN(
      std::vector<uint8_t> payload,
      RoundTrip(opcode, EncodeQueryBody(image, scene, options)));
  BinaryReader reader(payload);
  RemoteQueryResult result;
  WALRUS_ASSIGN_OR_RETURN(result.matches, DecodeMatches(&reader));
  WALRUS_ASSIGN_OR_RETURN(result.stats, DecodeQueryStats(&reader));
  return result;
}

Result<RemoteQueryResult> WalrusClient::Query(const ImageF& image,
                                              const QueryOptions& options) {
  return RunQuery(Opcode::kQuery, image, nullptr, options);
}

Result<RemoteQueryResult> WalrusClient::SceneQuery(
    const ImageF& image, const PixelRect& scene, const QueryOptions& options) {
  return RunQuery(Opcode::kSceneQuery, image, &scene, options);
}

Status WalrusClient::InsertImage(uint64_t image_id, const std::string& name,
                                 const ImageF& image) {
  BinaryWriter body;
  body.PutU64(image_id);
  body.PutString(name);
  EncodeImage(image, &body);
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          RoundTrip(Opcode::kInsertImage, body.buffer()));
  (void)payload;
  return Status::OK();
}

Status WalrusClient::DeleteImage(uint64_t image_id) {
  BinaryWriter body;
  body.PutU64(image_id);
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          RoundTrip(Opcode::kDeleteImage, body.buffer()));
  (void)payload;
  return Status::OK();
}

Result<ServerStats> WalrusClient::Stats() {
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          RoundTrip(Opcode::kStats, {}));
  BinaryReader reader(payload);
  return DecodeServerStats(&reader);
}

Result<MetricsSnapshot> WalrusClient::Metrics() {
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          RoundTrip(Opcode::kMetrics, {}));
  BinaryReader reader(payload);
  return DecodeMetricsSnapshot(&reader);
}

Status WalrusClient::Shutdown() {
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          RoundTrip(Opcode::kShutdown, {}));
  (void)payload;
  return Status::OK();
}

Result<uint64_t> WalrusClient::SendPing() { return Send(Opcode::kPing, {}); }

Result<uint64_t> WalrusClient::SendQuery(const ImageF& image,
                                         const QueryOptions& options) {
  return Send(Opcode::kQuery, EncodeQueryBody(image, nullptr, options));
}

Result<uint64_t> WalrusClient::SendSceneQuery(const ImageF& image,
                                              const PixelRect& scene,
                                              const QueryOptions& options) {
  return Send(Opcode::kSceneQuery, EncodeQueryBody(image, &scene, options));
}

Result<uint64_t> WalrusClient::SendStats() {
  return Send(Opcode::kStats, {});
}

Result<uint64_t> WalrusClient::SendInsertImage(uint64_t image_id,
                                               const std::string& name,
                                               const ImageF& image) {
  BinaryWriter body;
  body.PutU64(image_id);
  body.PutString(name);
  EncodeImage(image, &body);
  return Send(Opcode::kInsertImage, body.buffer());
}

Result<uint64_t> WalrusClient::SendDeleteImage(uint64_t image_id) {
  BinaryWriter body;
  body.PutU64(image_id);
  return Send(Opcode::kDeleteImage, body.buffer());
}

Result<RemoteQueryResult> WalrusClient::ParseQueryResult(
    const RemoteResponse& response) {
  WALRUS_RETURN_IF_ERROR(response.status);
  BinaryReader reader(response.payload);
  RemoteQueryResult result;
  WALRUS_ASSIGN_OR_RETURN(result.matches, DecodeMatches(&reader));
  WALRUS_ASSIGN_OR_RETURN(result.stats, DecodeQueryStats(&reader));
  return result;
}

Result<std::vector<RemoteQueryResult>> WalrusClient::QueryPipelined(
    const std::vector<ImageF>& images, const QueryOptions& options) {
  std::vector<uint64_t> ids;
  ids.reserve(images.size());
  for (const ImageF& image : images) {
    WALRUS_ASSIGN_OR_RETURN(uint64_t id, SendQuery(image, options));
    ids.push_back(id);
  }
  std::vector<RemoteQueryResult> results;
  results.reserve(images.size());
  for (uint64_t id : ids) {
    WALRUS_ASSIGN_OR_RETURN(RemoteResponse response, ReceiveResponse());
    if (response.request_id != id) {
      // The ordering guarantee is part of the protocol contract; a
      // mismatch here means the server reordered pipelined responses.
      return Status::Corruption(
          "pipelined response id " + std::to_string(response.request_id) +
          " arrived out of order (expected " + std::to_string(id) + ")");
    }
    WALRUS_ASSIGN_OR_RETURN(RemoteQueryResult result,
                            ParseQueryResult(response));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace walrus
