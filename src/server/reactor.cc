#include "server/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iterator>
#include <utility>

namespace walrus {

// ---------------------------------------------------------------------------
// ReactorConn

ReactorConn::ReactorConn(UniqueFd fd, EventLoop* loop, ReactorStats* stats,
                         const ReactorOptions& options)
    : fd_(std::move(fd)), loop_(loop), stats_(stats), options_(options) {
  stats_->connections->Add(1);
}

ReactorConn::~ReactorConn() {
  stats_->connections->Add(-1);
  // Whatever never reached the wire stops counting as queued.
  MutexLock lock(mutex_);
  if (outbound_bytes_ > 0) {
    stats_->queue_bytes->Add(-static_cast<int64_t>(outbound_bytes_));
    outbound_bytes_ = 0;
  }
}

size_t ReactorConn::PendingInput(const uint8_t** data) const {
  *data = input_.data() + input_consumed_;
  return input_.size() - input_consumed_;
}

void ReactorConn::ConsumeInput(size_t n) {
  input_consumed_ += n;
  // Reclaim the parsed prefix once it dominates the buffer, so a long-lived
  // pipelined connection doesn't grow its input buffer without bound.
  if (input_consumed_ == input_.size()) {
    input_.clear();
    input_consumed_ = 0;
  } else if (input_consumed_ > (64u << 10) &&
             input_consumed_ >= input_.size() / 2) {
    input_.erase(input_.begin(),
                 input_.begin() + static_cast<ptrdiff_t>(input_consumed_));
    input_consumed_ = 0;
  }
}

void ReactorConn::BeginRequest() {
  {
    MutexLock lock(mutex_);
    ++in_flight_;
  }
  stats_->in_flight->Add(1);
}

void ReactorConn::CloseAfterFlush() {
  {
    MutexLock lock(mutex_);
    close_after_flush_ = true;
  }
  loop_->Notify(shared_from_this());
}

void ReactorConn::Respond(uint64_t seq, FrameParts frame,
                          bool ends_in_flight) {
  {
    MutexLock lock(mutex_);
    if (ends_in_flight) --in_flight_;
    if (!closed_) {
      size_t bytes = frame.TotalBytes();
      completed_.emplace(seq, std::move(frame));
      outbound_bytes_ += bytes;
      stats_->queue_bytes->Add(static_cast<int64_t>(bytes));
      PromoteLocked();
    }
  }
  if (ends_in_flight) stats_->in_flight->Add(-1);
  loop_->Notify(shared_from_this());
}

void ReactorConn::PromoteLocked() {
  for (auto it = completed_.find(next_flush_seq_); it != completed_.end();
       it = completed_.find(next_flush_seq_)) {
    outbound_.push_back(std::move(it->second));
    completed_.erase(it);
    ++next_flush_seq_;
  }
}

bool ReactorConn::FlushLocked() {
  while (!outbound_.empty()) {
    // Gather slices from the queued frames, skipping the already-written
    // prefix of the front frame.
    IoSlice slices[kMaxWritevSlices];
    int n = 0;
    size_t skip = front_offset_;
    for (const FrameParts& frame : outbound_) {
      if (n >= kMaxWritevSlices) break;
      const size_t segment_count = 2 + frame.body.size();
      for (size_t seg = 0; seg < segment_count && n < kMaxWritevSlices;
           ++seg) {
        const uint8_t* data;
        size_t size;
        if (seg == 0) {
          data = frame.header.data();
          size = frame.header.size();
        } else if (seg <= frame.body.size()) {
          data = frame.body[seg - 1].data();
          size = frame.body[seg - 1].size();
        } else {
          data = frame.trailer.data();
          size = frame.trailer.size();
        }
        if (skip >= size) {
          skip -= size;
          continue;
        }
        slices[n].data = data + skip;
        slices[n].size = size - skip;
        skip = 0;
        ++n;
      }
    }
    if (n == 0) break;
    Result<size_t> put = WritevSome(fd_.get(), slices, n);
    if (!put.ok()) return false;
    if (*put == 0) break;  // send buffer full: wait for EPOLLOUT
    stats_->bytes_out->fetch_add(*put, std::memory_order_relaxed);
    stats_->queue_bytes->Add(-static_cast<int64_t>(*put));
    outbound_bytes_ -= *put;
    size_t remaining = *put;
    while (remaining > 0) {
      FrameParts& front = outbound_.front();
      size_t left = front.TotalBytes() - front_offset_;
      if (remaining >= left) {
        remaining -= left;
        front_offset_ = 0;
        outbound_.pop_front();
      } else {
        front_offset_ += remaining;
        remaining = 0;
      }
    }
  }
  return true;
}

void ReactorConn::UpdateBackpressureLocked() {
  if (!read_paused_ && outbound_bytes_ > options_.max_conn_outbound_bytes) {
    read_paused_ = true;
    stats_->stalled_reads->Increment();
  } else if (read_paused_ &&
             outbound_bytes_ <= options_.max_conn_outbound_bytes / 2) {
    read_paused_ = false;
  }
}

// ---------------------------------------------------------------------------
// EventLoop

EventLoop::EventLoop(FrameSink* sink, ReactorStats* stats,
                     ReactorOptions options)
    : sink_(sink), stats_(stats), options_(options) {
  epoll_fd_ = UniqueFd(::epoll_create1(0));
  wake_fd_ = UniqueFd(::eventfd(0, EFD_NONBLOCK));
  if (!epoll_fd_.valid() || !wake_fd_.valid()) return;
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) != 0) {
    return;
  }
  thread_ = std::thread([this] { Run(); });
}

EventLoop::~EventLoop() {
  if (thread_.joinable()) {
    BeginDrain();
    FinishDrain(0);
    Join();
  }
}

void EventLoop::Wake() {
  uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_.get(), &one, sizeof(one));
  static_cast<void>(ignored);  // EAGAIN means a wakeup is already pending
}

void EventLoop::Adopt(UniqueFd fd) {
  {
    MutexLock lock(mutex_);
    intake_.push_back(std::move(fd));
  }
  Wake();
}

void EventLoop::Notify(std::shared_ptr<ReactorConn> conn) {
  if (conn == nullptr) return;
  {
    MutexLock lock(mutex_);
    wake_queue_.push_back(std::move(conn));
  }
  Wake();
}

void EventLoop::BeginDrain() {
  MutexLock lock(mutex_);
  draining_ = true;
  Wake();
  while (!drain_applied_) drain_cv_.Wait(lock);
}

void EventLoop::FinishDrain(int drain_deadline_ms) {
  {
    MutexLock lock(mutex_);
    finish_drain_ = true;
    drain_deadline_ms_ = drain_deadline_ms;
  }
  Wake();
}

void EventLoop::Join() {
  if (thread_.joinable()) thread_.join();
}

void EventLoop::AddConnection(UniqueFd fd) {
  if (!SetNonBlocking(fd.get()).ok()) return;  // peer is already gone
  if (options_.so_sndbuf_bytes > 0) {
    // Best-effort: a connection that keeps the kernel default just hits
    // backpressure later.
    int bytes = options_.so_sndbuf_bytes;
    int rc = ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &bytes,
                          sizeof(bytes));
    static_cast<void>(rc);
  }
  int raw = fd.get();
  auto conn =
      std::make_shared<ReactorConn>(std::move(fd), this, stats_, options_);
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = raw;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, raw, &ev) != 0) return;
  conn->epoll_mask_ = EPOLLIN;
  conn->in_epoll_ = true;
  conns_.emplace(raw, std::move(conn));
}

void EventLoop::HandleReadable(const std::shared_ptr<ReactorConn>& conn) {
  size_t budget = options_.read_chunk_budget;
  bool got_bytes = false;
  bool eof = false;
  bool dead = false;
  while (budget > 0) {
    {
      MutexLock lock(conn->mutex_);
      if (conn->read_paused_ || conn->close_after_flush_ || conn->closed_ ||
          conn->peer_eof_) {
        break;
      }
    }
    uint8_t chunk[16 << 10];
    size_t want = sizeof(chunk) < budget ? sizeof(chunk) : budget;
    Result<size_t> got = ReadSome(conn->fd(), chunk, want);
    if (!got.ok()) {
      if (got.status().code() == StatusCode::kNotFound) {
        eof = true;  // orderly close: flush what we owe, then tear down
      } else {
        dead = true;  // reset: nothing more can reach the peer
      }
      break;
    }
    if (*got == 0) break;  // drained the socket for now
    conn->input_.insert(conn->input_.end(), chunk, chunk + *got);
    got_bytes = true;
    budget -= *got;
    if (*got < want) break;
  }
  if (got_bytes) sink_->OnInput(conn);
  if (eof) {
    MutexLock lock(conn->mutex_);
    conn->peer_eof_ = true;
  }
  if (dead) {
    MutexLock lock(conn->mutex_);
    conn->closed_ = true;
  }
}

void EventLoop::UpdateConnection(const std::shared_ptr<ReactorConn>& conn) {
  if (conn->fd() < 0) return;
  auto registered = conns_.find(conn->fd());
  // The fd number may have been reused by a newer connection between a
  // worker's Notify and this wakeup; only act on the live registration.
  if (registered == conns_.end() || registered->second != conn) return;
  bool want_in = false;
  bool want_out = false;
  bool close_now = false;
  bool drain_reads;
  {
    MutexLock lock(mutex_);
    drain_reads = draining_;
  }
  {
    MutexLock lock(conn->mutex_);
    if (!conn->closed_) {
      conn->PromoteLocked();
      if (!conn->FlushLocked()) conn->closed_ = true;
    }
    if (conn->closed_) {
      close_now = true;
    } else {
      conn->UpdateBackpressureLocked();
      want_out = !conn->outbound_.empty();
      bool done = (conn->close_after_flush_ || conn->peer_eof_) &&
                  conn->in_flight_ == 0 && !want_out &&
                  conn->completed_.empty();
      if (done) {
        conn->closed_ = true;
        close_now = true;
      } else {
        want_in = !conn->read_paused_ && !conn->close_after_flush_ &&
                  !conn->peer_eof_ && !drain_reads;
      }
    }
  }
  if (close_now) {
    CloseConnection(conn);
    return;
  }
  uint32_t mask = (want_in ? EPOLLIN : 0u) | (want_out ? EPOLLOUT : 0u);
  if (mask != conn->epoll_mask_) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = mask;
    ev.data.fd = conn->fd();
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd(), &ev) == 0) {
      conn->epoll_mask_ = mask;
    }
  }
}

void EventLoop::CloseConnection(const std::shared_ptr<ReactorConn>& conn) {
  int raw = conn->fd();
  if (raw < 0) return;
  auto it = conns_.find(raw);
  if (it == conns_.end()) return;
  if (conn->in_epoll_) {
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, raw, nullptr);
    conn->in_epoll_ = false;
  }
  {
    MutexLock lock(conn->mutex_);
    conn->closed_ = true;
  }
  conn->fd_.Close();
  conns_.erase(it);
}

void EventLoop::Run() {
  using Clock = std::chrono::steady_clock;
  bool drain_ack_pending = false;
  bool finishing = false;
  Clock::time_point finish_deadline{};
  epoll_event events[128];
  for (;;) {
    int timeout_ms = finishing ? 10 : -1;
    int n = ::epoll_wait(epoll_fd_.get(), events,
                         static_cast<int>(std::size(events)), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed: nothing sane left to do
    }
    if (n > 0) stats_->wakeups->Increment();

    // Drain cross-thread state under the loop lock.
    std::vector<UniqueFd> intake;
    std::vector<std::shared_ptr<ReactorConn>> woken;
    {
      MutexLock lock(mutex_);
      intake.swap(intake_);
      woken.swap(wake_queue_);
      if (draining_ && !drain_applied_) drain_ack_pending = true;
      if (finish_drain_ && !finishing) {
        finishing = true;
        finish_deadline =
            Clock::now() + std::chrono::milliseconds(drain_deadline_ms_);
      }
    }

    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == wake_fd_.get()) {
        uint64_t count;
        while (::read(wake_fd_.get(), &count, sizeof(count)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(events[i].data.fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<ReactorConn> conn = it->second;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        MutexLock lock(conn->mutex_);
        conn->closed_ = true;
      } else if (events[i].events & EPOLLIN) {
        HandleReadable(conn);
      }
      UpdateConnection(conn);
    }

    for (UniqueFd& fd : intake) AddConnection(std::move(fd));
    for (const std::shared_ptr<ReactorConn>& conn : woken) {
      UpdateConnection(conn);
    }

    if (drain_ack_pending) {
      // Deregister read interest everywhere, then acknowledge: after the
      // notify below, no byte is read and no frame is parsed, so the
      // server can drain its worker pool without a dispatch racing in.
      std::vector<std::shared_ptr<ReactorConn>> all;
      all.reserve(conns_.size());
      for (const auto& entry : conns_) all.push_back(entry.second);
      for (const std::shared_ptr<ReactorConn>& conn : all) {
        UpdateConnection(conn);
      }
      drain_ack_pending = false;
      MutexLock lock(mutex_);
      drain_applied_ = true;
      drain_cv_.NotifyAll();
    }

    if (finishing) {
      bool expired = Clock::now() >= finish_deadline;
      std::vector<std::shared_ptr<ReactorConn>> all;
      all.reserve(conns_.size());
      for (const auto& entry : conns_) all.push_back(entry.second);
      for (const std::shared_ptr<ReactorConn>& conn : all) {
        if (expired) {
          MutexLock lock(conn->mutex_);
          conn->closed_ = true;
        } else {
          // Responses are all enqueued by now (the pool is drained);
          // anything fully flushed can close.
          MutexLock lock(conn->mutex_);
          conn->PromoteLocked();
          if (conn->outbound_.empty() && conn->completed_.empty()) {
            conn->closed_ = true;
          }
        }
        UpdateConnection(conn);
      }
      if (conns_.empty()) break;
    }
  }
  // Force-close whatever is left (epoll failure or deadline path).
  std::vector<std::shared_ptr<ReactorConn>> all;
  all.reserve(conns_.size());
  for (const auto& entry : conns_) all.push_back(entry.second);
  for (const std::shared_ptr<ReactorConn>& conn : all) CloseConnection(conn);
}

}  // namespace walrus
