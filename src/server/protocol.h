#ifndef WALRUS_SERVER_PROTOCOL_H_
#define WALRUS_SERVER_PROTOCOL_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/ingest_engine.h"
#include "core/query.h"
#include "core/region_extractor.h"
#include "image/image.h"

namespace walrus {

/// walrusd wire protocol (DESIGN.md section 9): a versioned length-prefixed
/// binary framing in the iproto tradition. Every message — request or
/// response — is one frame:
///
///   offset  size  field
///   0       4     magic 0x57414C52 ("WALR", little-endian u32)
///   4       1     protocol version (kProtocolVersion)
///   5       1     opcode
///   6       2     reserved (zero)
///   8       8     request id (echoed verbatim in the response)
///   16      4     body length in bytes (<= kMaxBodyBytes)
///   20      n     body
///   20+n    4     CRC-32 of bytes [0, 20+n)  (common/crc32.h)
///
/// Response bodies always begin with a status section (u8 StatusCode value +
/// length-prefixed message string); an OK status is followed by the
/// opcode-specific payload. Versioning rule: the header layout is frozen;
/// incompatible body changes bump kProtocolVersion and the server rejects
/// other versions with InvalidArgument (the connection stays usable, since
/// the frame boundary is still known).
inline constexpr uint32_t kProtocolMagic = 0x57414C52;  // "WALR"
/// v2: QueryOptions gained collect_trace; QueryStats gained the per-stage
/// breakdown and span tree; the METRICS opcode was added.
/// v3: QueryStats gained result_cache_hit; ServerStats gained the shard
/// fan-out section (num_shards, per-shard probe counts) and result-cache
/// counters.
/// v4: the INSERT_IMAGE and DELETE_IMAGE mutation opcodes were added
/// (answered with Unimplemented by read-only servers); ServerStats gained
/// the ingest/WAL section.
/// v5: QueryOptions gained batched_probe + signature_prefilter (so clients
/// can A/B the probe paths remotely); QueryStats gained filter_seconds and
/// the prefilter candidate counters. First version with a back-compat
/// window: v4 frames are still accepted and answered in v4 (the v5 fields
/// are simply not transmitted; the server applies its own defaults).
inline constexpr uint8_t kProtocolVersion = 5;
inline constexpr uint8_t kMinSupportedProtocolVersion = 4;
inline constexpr size_t kFrameHeaderBytes = 20;
inline constexpr size_t kFrameTrailerBytes = 4;
/// Upper bound on a frame body; larger length prefixes are rejected before
/// any allocation (a 4-byte length field must not let a peer OOM us).
inline constexpr uint32_t kMaxBodyBytes = 64u << 20;

enum class Opcode : uint8_t {
  kPing = 0,        // liveness probe; empty body both ways
  kQuery = 1,       // QueryOptions + query image -> matches + stats
  kSceneQuery = 2,  // QueryOptions + scene rect + image -> matches + stats
  kStats = 3,       // server counters snapshot
  kShutdown = 4,    // graceful server shutdown (drains in-flight requests)
  kMetrics = 5,     // process-global metrics registry snapshot
  kInsertImage = 6,  // image id + name + image -> durable online insert (v4)
  kDeleteImage = 7,  // image id -> durable online delete (v4)
};
inline constexpr int kNumOpcodes = 8;

/// Stable display name for an opcode ("QUERY", "PING", ...).
const char* OpcodeName(Opcode opcode);

/// Decoded frame header (magic/reserved validated away).
struct FrameHeader {
  uint8_t version = kProtocolVersion;
  Opcode opcode = Opcode::kPing;
  uint64_t request_id = 0;
  uint32_t body_length = 0;
};

/// Builds a complete frame: header + body + CRC-32 trailer. `version`
/// stamps the header byte; the caller must have encoded the body with the
/// matching codec version.
std::vector<uint8_t> EncodeFrame(Opcode opcode, uint64_t request_id,
                                 const std::vector<uint8_t>& body,
                                 uint8_t version = kProtocolVersion);

/// A frame held as scatter-gather segments: the fixed header, any number
/// of body chunks (concatenated on the wire), and the CRC-32 trailer.
/// This is the reactor's response representation -- the chunks are handed
/// to writev as-is, so a multi-megabyte QUERY payload is framed and
/// written without ever being copied into one contiguous buffer.
struct FrameParts {
  std::array<uint8_t, kFrameHeaderBytes> header = {};
  std::vector<std::vector<uint8_t>> body;
  std::array<uint8_t, kFrameTrailerBytes> trailer = {};

  size_t TotalBytes() const {
    size_t n = kFrameHeaderBytes + kFrameTrailerBytes;
    for (const std::vector<uint8_t>& chunk : body) n += chunk.size();
    return n;
  }
};

/// Frames `body_chunks` (taken by move) under the given opcode/request id.
/// The CRC trailer is computed incrementally with Crc32Extend over header
/// then chunks, so the bytes on the wire are identical to
/// EncodeFrame(opcode, request_id, concat(body_chunks)).
FrameParts MakeFrameParts(Opcode opcode, uint64_t request_id,
                          std::vector<std::vector<uint8_t>> body_chunks,
                          uint8_t version = kProtocolVersion);

/// Parses the fixed-size header (`data` must hold kFrameHeaderBytes).
/// Corruption on bad magic (framing lost: the caller must drop the
/// connection); InvalidArgument on a version outside
/// [kMinSupportedProtocolVersion, kProtocolVersion] or an oversized
/// body length (frame boundary may still be recoverable for the version
/// case). Unknown opcodes are *not* rejected here so the connection can
/// skip the body and answer with an error.
Status DecodeFrameHeader(const uint8_t* data, FrameHeader* out);

/// CRC-32 over header + body, as stored in the frame trailer.
uint32_t FrameCrc(const uint8_t* header, const std::vector<uint8_t>& body);

/// Response status section: u8 code + message string. The decoder returns
/// its own framing errors; the transmitted status lands in `remote`.
void EncodeResponseStatus(const Status& status, BinaryWriter* writer);
Status DecodeResponseStatus(BinaryReader* reader, Status* remote);

// ---- Body payload encodings (shared by server, client, and tests) -------

/// Body codecs take the negotiated frame version: a server answering a v4
/// request encodes/decodes v4 bodies (the v5 fields stay at their
/// defaults), a v5 peer gets the full layout.
void EncodeQueryOptions(const QueryOptions& options, BinaryWriter* writer,
                        uint8_t version = kProtocolVersion);
Result<QueryOptions> DecodeQueryOptions(BinaryReader* reader,
                                        uint8_t version = kProtocolVersion);

/// Planar float image; dimensions are validated on decode (kMaxImageSide,
/// channel count 1..4) before any plane allocation.
inline constexpr int kMaxImageSide = 1 << 14;
void EncodeImage(const ImageF& image, BinaryWriter* writer);
Result<ImageF> DecodeImage(BinaryReader* reader);

void EncodePixelRect(const PixelRect& rect, BinaryWriter* writer);
Result<PixelRect> DecodePixelRect(BinaryReader* reader);

void EncodeMatches(const std::vector<QueryMatch>& matches,
                   BinaryWriter* writer);
Result<std::vector<QueryMatch>> DecodeMatches(BinaryReader* reader);

void EncodeQueryStats(const QueryStats& stats, BinaryWriter* writer,
                      uint8_t version = kProtocolVersion);
Result<QueryStats> DecodeQueryStats(BinaryReader* reader,
                                    uint8_t version = kProtocolVersion);

/// Query span tree (QueryStats::spans when QueryOptions::collect_trace is
/// set). Nesting deeper than kMaxTraceDepth is rejected on decode.
inline constexpr int kMaxTraceDepth = 64;
void EncodeTraceSpans(const std::vector<TraceSpan>& spans,
                      BinaryWriter* writer);
Result<std::vector<TraceSpan>> DecodeTraceSpans(BinaryReader* reader);

/// Metrics registry snapshot, exposed through the METRICS opcode.
void EncodeMetricsSnapshot(const MetricsSnapshot& snapshot,
                           BinaryWriter* writer);
Result<MetricsSnapshot> DecodeMetricsSnapshot(BinaryReader* reader);

/// Server-side counters exposed through the STATS opcode.
struct ServerStats {
  uint64_t requests_by_opcode[kNumOpcodes] = {};
  uint64_t rejected_overload = 0;   // admission queue full -> OVERLOADED
  uint64_t deadline_exceeded = 0;   // expired in queue before execution
  uint64_t protocol_errors = 0;     // malformed frames / CRC failures
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t connections_accepted = 0;
  /// Request latency (dispatch to response written), from the server's
  /// log-scale histogram.
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  /// Shard fan-out (v3): shard count of the engine behind the server (1
  /// when serving a plain WalrusIndex) and cumulative regions retrieved by
  /// probes against each shard.
  uint32_t num_shards = 1;
  std::vector<uint64_t> shard_probes;
  /// Result-cache health (v3); all zero when no cache is configured.
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  uint64_t result_cache_entries = 0;
  uint64_t result_cache_capacity = 0;
  /// Ingest/WAL section (v4): present only when the server fronts a live
  /// (mutable) engine; read-only servers send has_ingest = false.
  bool has_ingest = false;
  IngestStats ingest;
  /// Signature prefilter funnel (v5): cumulative walrus.prefilter.*
  /// counters of this process (all zero when the tier never ran).
  uint64_t prefilter_candidates_in = 0;
  uint64_t prefilter_pruned = 0;
  uint64_t prefilter_candidates_out = 0;
};
void EncodeServerStats(const ServerStats& stats, BinaryWriter* writer,
                       uint8_t version = kProtocolVersion);
Result<ServerStats> DecodeServerStats(BinaryReader* reader,
                                      uint8_t version = kProtocolVersion);

}  // namespace walrus

#endif  // WALRUS_SERVER_PROTOCOL_H_
