#include "server/server.h"

#include <algorithm>
#include <cmath>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/status.h"

namespace walrus {

namespace {

using Clock = std::chrono::steady_clock;

bool KnownOpcode(Opcode opcode) {
  return static_cast<uint8_t>(opcode) < kNumOpcodes;
}

/// Registry mirror of the per-server latency histogram: cumulative across
/// every server in the process, and in the shared exponential bucket shape
/// the rest of the query path uses.
Histogram* RequestSecondsHistogram() {
  static Histogram* const histogram = MetricsRegistry::Global().GetHistogram(
      "walrus.server.request_seconds", ExponentialBuckets(1e-6, 2.0, 36));
  return histogram;
}

}  // namespace

void WalrusServer::LatencyHistogram::Record(double seconds) {
  double us = seconds * 1e6;
  int bucket = 0;
  if (us >= 1.0) {
    bucket = std::min(kBuckets - 1,
                      static_cast<int>(std::log2(us)) + 1);
  }
  counts[bucket].fetch_add(1, std::memory_order_relaxed);
}

double WalrusServer::LatencyHistogram::QuantileMs(double q) const {
  uint64_t total = 0;
  uint64_t snapshot[kBuckets];
  for (int i = 0; i < kBuckets; ++i) {
    snapshot[i] = counts[i].load(std::memory_order_relaxed);
    total += snapshot[i];
  }
  if (total == 0) return 0.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += snapshot[i];
    if (seen > rank) {
      return std::pow(2.0, i) / 1e3;  // bucket upper edge, in ms
    }
  }
  return std::pow(2.0, kBuckets - 1) / 1e3;
}

WalrusServer::WalrusServer(const WalrusIndex& index, ServerOptions options)
    : owned_engine_(std::make_unique<SingleIndexEngine>(index)),
      engine_(*owned_engine_),
      options_(std::move(options)) {
  for (auto& counter : requests_by_opcode_) counter.store(0);
  for (auto& counter : latency_.counts) counter.store(0);
}

WalrusServer::WalrusServer(const QueryEngine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  for (auto& counter : requests_by_opcode_) counter.store(0);
  for (auto& counter : latency_.counts) counter.store(0);
}

WalrusServer::WalrusServer(const QueryEngine& engine, IngestEngine* ingest,
                           ServerOptions options)
    : engine_(engine), ingest_(ingest), options_(std::move(options)) {
  for (auto& counter : requests_by_opcode_) counter.store(0);
  for (auto& counter : latency_.counts) counter.store(0);
}

WalrusServer::~WalrusServer() {
  if (started_ && !joined_) Stop();
}

Status WalrusServer::Start() {
  WALRUS_ASSIGN_OR_RETURN(listen_fd_,
                          ListenTcp(options_.host, options_.port));
  WALRUS_ASSIGN_OR_RETURN(port_, SocketLocalPort(listen_fd_.get()));

  MetricsRegistry& registry = MetricsRegistry::Global();
  reactor_stats_.wakeups =
      registry.GetCounter("walrus.server.reactor.wakeups");
  reactor_stats_.stalled_reads =
      registry.GetCounter("walrus.server.reactor.stalled_reads");
  reactor_stats_.queue_bytes =
      registry.GetGauge("walrus.server.reactor.queue_bytes");
  reactor_stats_.in_flight =
      registry.GetGauge("walrus.server.reactor.in_flight");
  reactor_stats_.connections =
      registry.GetGauge("walrus.server.reactor.connections");
  reactor_stats_.bytes_out = &bytes_out_;

  ReactorOptions reactor_options;
  reactor_options.max_conn_outbound_bytes = options_.max_conn_outbound_bytes;
  reactor_options.so_sndbuf_bytes = options_.so_sndbuf_bytes;
  int num_loops = options_.reactor_threads > 0 ? options_.reactor_threads
                                               : ThreadPool::DefaultThreads();
  for (int i = 0; i < num_loops; ++i) {
    auto loop =
        std::make_unique<EventLoop>(this, &reactor_stats_, reactor_options);
    if (!loop->ok()) {
      loops_.clear();
      return Status::IOError("failed to start reactor event loop (epoll)");
    }
    loops_.push_back(std::move(loop));
  }

  int workers = options_.num_workers > 0 ? options_.num_workers
                                         : ThreadPool::DefaultThreads();
  pool_ = std::make_unique<ThreadPool>(workers);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  EngineStats engine_stats = engine_.Stats();
  WALRUS_LOG(Info) << "walrusd serving " << engine_.ImageCount()
                   << " images on " << options_.host << ":" << port_ << " ("
                   << engine_stats.num_shards << " shard(s), " << num_loops
                   << " reactor loop(s), " << workers
                   << " workers, admission bound " << options_.max_pending
                   << ")";
  return Status::OK();
}

void WalrusServer::RequestStop() {
  {
    MutexLock lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.NotifyAll();
}

void WalrusServer::Stop() {
  RequestStop();
  Wait();
}

void WalrusServer::Wait() {
  if (!started_ || joined_) return;
  {
    MutexLock lock(stop_mutex_);
    while (!stop_requested_) stop_cv_.Wait(lock);
  }
  stopping_.store(true, std::memory_order_release);

  // 1. Stop accepting: shutting the listener down unblocks accept(2). The
  // fd itself is closed only after the accept thread is joined, so the
  // thread never reads a dead descriptor.
  ShutdownRead(listen_fd_.get());
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_.Close();

  // 2. Quiesce the read side. BeginDrain is a synchronous handshake: when
  // it returns, that loop parses no further frame, so no new request can
  // reach the pool behind the drain below.
  for (const std::unique_ptr<EventLoop>& loop : loops_) loop->BeginDrain();

  // 3. Drain: every admitted request executes and its response is queued.
  pool_->Wait();
  pool_.reset();

  // 4. Flush: the loops write out every queued-but-unwritten response
  // (this is what makes SHUTDOWN's own reply reach the client), bounded by
  // the drain timeout for peers that stopped reading, then exit.
  for (const std::unique_ptr<EventLoop>& loop : loops_) {
    loop->FinishDrain(options_.drain_timeout_ms);
  }
  for (const std::unique_ptr<EventLoop>& loop : loops_) loop->Join();
  loops_.clear();
  joined_ = true;
}

void WalrusServer::AcceptLoop() {
  for (;;) {
    Result<UniqueFd> accepted = AcceptTcp(listen_fd_.get());
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) return;
      // Transient accept failure (e.g. EMFILE): keep serving, but don't
      // spin hot if the condition persists.
      WALRUS_LOG(Warning) << "walrusd accept: " << accepted.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    loops_[next_loop_]->Adopt(std::move(*accepted));
    next_loop_ = (next_loop_ + 1) % loops_.size();
  }
}

void WalrusServer::OnInput(const std::shared_ptr<ReactorConn>& conn) {
  for (;;) {
    const uint8_t* data;
    size_t avail = conn->PendingInput(&data);
    if (avail < kFrameHeaderBytes) return;  // partial header: wait

    FrameHeader header;
    Status parsed = DecodeFrameHeader(data, &header);
    if (parsed.code() == StatusCode::kCorruption) {
      // Bad magic: the byte stream is not frame-aligned, so nothing after
      // this point can be trusted. Error the request id we can't know (0)
      // and drop the connection -- after every prior response has been
      // written (the error reply takes the next sequence slot, so it
      // flushes behind them).
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      Respond(conn, conn->AllocateSeq(), FrameHeader{}, parsed, {}, false);
      conn->CloseAfterFlush();
      return;
    }
    if (!parsed.ok() && header.body_length > kMaxBodyBytes) {
      // Oversized body length: buffering past it to resync would let a
      // peer stream gigabytes at us; reply and close.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      Respond(conn, conn->AllocateSeq(), header, parsed, {}, false);
      conn->CloseAfterFlush();
      return;
    }

    const size_t frame_bytes =
        kFrameHeaderBytes + header.body_length + kFrameTrailerBytes;
    if (avail < frame_bytes) return;  // partial frame: wait for more bytes

    // The whole frame is buffered and its boundary is intact: any further
    // error costs only this request, not the connection.
    const uint8_t* body_data = data + kFrameHeaderBytes;
    const uint8_t* trailer = body_data + header.body_length;
    bytes_in_.fetch_add(frame_bytes, std::memory_order_relaxed);

    uint32_t stored = static_cast<uint32_t>(trailer[0]) |
                      static_cast<uint32_t>(trailer[1]) << 8 |
                      static_cast<uint32_t>(trailer[2]) << 16 |
                      static_cast<uint32_t>(trailer[3]) << 24;
    uint32_t actual = Crc32Extend(Crc32Extend(0, data, kFrameHeaderBytes),
                                  body_data, header.body_length);
    if (stored != actual) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      Respond(conn, conn->AllocateSeq(), header,
              Status::Corruption("frame: CRC-32 trailer mismatch"), {},
              false);
      conn->ConsumeInput(frame_bytes);
      continue;
    }
    if (!parsed.ok()) {  // unsupported version, boundary intact
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      Respond(conn, conn->AllocateSeq(), header, parsed, {}, false);
      conn->ConsumeInput(frame_bytes);
      continue;
    }
    if (!KnownOpcode(header.opcode)) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      Respond(conn, conn->AllocateSeq(), header,
              Status::InvalidArgument(
                  "frame: unknown opcode " +
                  std::to_string(static_cast<int>(header.opcode))),
              {}, false);
      conn->ConsumeInput(frame_bytes);
      continue;
    }

    requests_by_opcode_[static_cast<int>(header.opcode)].fetch_add(
        1, std::memory_order_relaxed);
    std::vector<uint8_t> body(body_data, body_data + header.body_length);
    conn->ConsumeInput(frame_bytes);
    DispatchRequest(conn, header, std::move(body));
  }
}

void WalrusServer::DispatchRequest(const std::shared_ptr<ReactorConn>& conn,
                                   const FrameHeader& header,
                                   std::vector<uint8_t> body) {
  // Bounded admission: claim a slot or reject right here on the loop
  // thread, so an overloaded server answers OVERLOADED in O(1) instead of
  // stacking work it cannot serve. The rejection still claims a sequence
  // slot, so a pipelining client sees it in request order.
  int before = pending_.fetch_add(1, std::memory_order_acq_rel);
  if (before >= options_.max_pending) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    Respond(conn, conn->AllocateSeq(), header,
            Status::Unavailable("OVERLOADED: admission queue full (" +
                                std::to_string(options_.max_pending) +
                                " in flight)"),
            {}, false);
    return;
  }
  uint64_t seq = conn->AllocateSeq();
  conn->BeginRequest();
  auto admitted = Clock::now();
  auto shared_body = std::make_shared<std::vector<uint8_t>>(std::move(body));
  pool_->Submit([this, conn, seq, header, shared_body, admitted] {
    ExecuteRequest(conn, seq, header, *shared_body, admitted);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  });
}

void WalrusServer::ExecuteRequest(const std::shared_ptr<ReactorConn>& conn,
                                  uint64_t seq, const FrameHeader& header,
                                  const std::vector<uint8_t>& body,
                                  Clock::time_point admitted) {
  if (options_.deadline_ms > 0 &&
      Clock::now() - admitted >=
          std::chrono::milliseconds(options_.deadline_ms)) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    Respond(conn, seq, header,
            Status::DeadlineExceeded(
                "request spent over " +
                std::to_string(options_.deadline_ms) +
                "ms in the admission queue"),
            {}, true);
    return;
  }
  if (options_.execution_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.execution_delay_ms));
  }

  BinaryReader reader(body);
  BinaryWriter payload;
  Status status = Status::OK();
  switch (header.opcode) {
    case Opcode::kPing:
      break;
    case Opcode::kQuery:
    case Opcode::kSceneQuery: {
      QueryOptions query_options;
      PixelRect scene;
      ImageF image;
      Status decoded = [&]() -> Status {
        WALRUS_ASSIGN_OR_RETURN(query_options,
                                DecodeQueryOptions(&reader, header.version));
        if (header.opcode == Opcode::kSceneQuery) {
          WALRUS_ASSIGN_OR_RETURN(scene, DecodePixelRect(&reader));
        }
        WALRUS_ASSIGN_OR_RETURN(image, DecodeImage(&reader));
        return Status::OK();
      }();
      if (!decoded.ok()) {
        // Body decode failures are protocol errors (the frame checksummed
        // fine but its contents are not a valid request).
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        status = decoded;
        break;
      }
      QueryStats stats;
      Result<std::vector<QueryMatch>> matches =
          header.opcode == Opcode::kQuery
              ? engine_.RunQuery(image, query_options, &stats)
              : engine_.RunSceneQuery(image, scene, query_options, &stats);
      if (!matches.ok()) {
        status = matches.status();
        break;
      }
      EncodeMatches(*matches, &payload);
      EncodeQueryStats(stats, &payload, header.version);
      break;
    }
    case Opcode::kStats:
      EncodeServerStats(Snapshot(), &payload, header.version);
      break;
    case Opcode::kShutdown:
      RequestStop();
      break;
    case Opcode::kMetrics:
      EncodeMetricsSnapshot(MetricsRegistry::Global().Snapshot(), &payload);
      break;
    case Opcode::kInsertImage: {
      uint64_t image_id = 0;
      std::string name;
      ImageF image;
      Status decoded = [&]() -> Status {
        WALRUS_ASSIGN_OR_RETURN(image_id, reader.GetU64());
        WALRUS_ASSIGN_OR_RETURN(name, reader.GetString());
        WALRUS_ASSIGN_OR_RETURN(image, DecodeImage(&reader));
        return Status::OK();
      }();
      if (!decoded.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        status = decoded;
        break;
      }
      if (ingest_ == nullptr) {
        status = Status::Unimplemented(
            "server is read-only (started without --wal-dir)");
        break;
      }
      status = ingest_->InsertImage(image_id, name, image);
      break;
    }
    case Opcode::kDeleteImage: {
      Result<uint64_t> image_id = reader.GetU64();
      if (!image_id.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        status = image_id.status();
        break;
      }
      if (ingest_ == nullptr) {
        status = Status::Unimplemented(
            "server is read-only (started without --wal-dir)");
        break;
      }
      status = ingest_->DeleteImage(*image_id);
      break;
    }
  }
  if (!status.ok()) {
    // The same failure context discipline as ExecuteQueryBatch: name the
    // request so a client multiplexing many can tell which one failed.
    status = Annotate(status, std::string(OpcodeName(header.opcode)) +
                                  " request " +
                                  std::to_string(header.request_id));
  }
  Respond(conn, seq, header, status, payload.TakeBuffer(), true);
  double seconds =
      std::chrono::duration<double>(Clock::now() - admitted).count();
  latency_.Record(seconds);
  RequestSecondsHistogram()->Observe(seconds);
}

void WalrusServer::Respond(const std::shared_ptr<ReactorConn>& conn,
                           uint64_t seq, const FrameHeader& header,
                           const Status& status,
                           std::vector<uint8_t> payload,
                           bool ends_in_flight) {
  BinaryWriter status_section;
  EncodeResponseStatus(status, &status_section);
  std::vector<std::vector<uint8_t>> chunks;
  chunks.reserve(2);
  chunks.push_back(status_section.TakeBuffer());
  if (status.ok() && !payload.empty()) {
    chunks.push_back(std::move(payload));  // zero-copy into the writev path
  }
  // Answer in the requester's protocol version so a v4 client can decode
  // the response. Out-of-range versions (error replies to frames we
  // rejected) are clamped to something a current client can parse.
  uint8_t version = header.version;
  if (version < kMinSupportedProtocolVersion ||
      version > kProtocolVersion) {
    version = kProtocolVersion;
  }
  conn->Respond(seq,
                MakeFrameParts(header.opcode, header.request_id,
                               std::move(chunks), version),
                ends_in_flight);
}

ServerStats WalrusServer::Snapshot() const {
  ServerStats stats;
  for (int i = 0; i < kNumOpcodes; ++i) {
    stats.requests_by_opcode[i] =
        requests_by_opcode_[i].load(std::memory_order_relaxed);
  }
  stats.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  stats.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.latency_p50_ms = latency_.QuantileMs(0.50);
  stats.latency_p99_ms = latency_.QuantileMs(0.99);
  EngineStats engine_stats = engine_.Stats();
  stats.num_shards = static_cast<uint32_t>(engine_stats.num_shards);
  stats.shard_probes = std::move(engine_stats.shard_probes);
  stats.result_cache_hits = engine_stats.result_cache_hits;
  stats.result_cache_misses = engine_stats.result_cache_misses;
  stats.result_cache_entries = engine_stats.result_cache_entries;
  stats.result_cache_capacity = engine_stats.result_cache_capacity;
  if (ingest_ != nullptr) {
    stats.has_ingest = true;
    stats.ingest = ingest_->IngestStatsSnapshot();
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  stats.prefilter_candidates_in =
      registry.GetCounter("walrus.prefilter.candidates_in")->Value();
  stats.prefilter_pruned =
      registry.GetCounter("walrus.prefilter.pruned")->Value();
  stats.prefilter_candidates_out =
      registry.GetCounter("walrus.prefilter.candidates_out")->Value();
  return stats;
}

}  // namespace walrus
