#include "wavelet/sliding_window.h"

#include <algorithm>
#include <cstring>

#include "common/math_util.h"

#include "common/check.h"
#include "common/metrics.h"
#include "common/simd.h"

namespace walrus {
namespace {

/// DP sliding-window metrics: how many window signatures the wavelet stage
/// produces (summed over all pyramid levels) and how many full plane
/// computations ran.
struct SlidingWindowMetrics {
  Counter* plane_computations;
  Counter* windows_computed;

  static const SlidingWindowMetrics& Get() {
    static const SlidingWindowMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      SlidingWindowMetrics m;
      m.plane_computations =
          registry.GetCounter("walrus.wavelet.plane_computations");
      m.windows_computed =
          registry.GetCounter("walrus.wavelet.windows_computed");
      return m;
    }();
    return metrics;
  }
};

/// copyBlocks (Figure 3): tiles the detail quadrants at size p/2 of the
/// target from the corresponding quadrants (at size p/4) of the four
/// subwindow transforms. q = p/4 is the tile side.
void CopyBlocks(const float* const srcs[4], int src_stride, float* out,
                int out_stride, int p) {
  int half = p / 2;
  int q = p / 4;
  // Tile offsets of subwindows 1..4 inside each target quadrant.
  const int off_x[4] = {0, q, 0, q};
  const int off_y[4] = {0, 0, q, q};
  for (int k = 0; k < 4; ++k) {
    const float* src = srcs[k];
    int ox = off_x[k];
    int oy = off_y[k];
    size_t row_bytes = static_cast<size_t>(q) * sizeof(float);
    for (int j = 0; j < q; ++j) {
      const float* src_ur = src + j * src_stride + q;        // x in [q, 2q)
      const float* src_ll = src + (q + j) * src_stride;      // y in [q, 2q)
      const float* src_lr = src + (q + j) * src_stride + q;  // both
      float* out_ur = out + (oy + j) * out_stride + half + ox;
      float* out_ll = out + (half + oy + j) * out_stride + ox;
      float* out_lr = out + (half + oy + j) * out_stride + half + ox;
      std::memcpy(out_ur, src_ur, row_bytes);
      std::memcpy(out_ll, src_ll, row_bytes);
      std::memcpy(out_lr, src_lr, row_bytes);
    }
  }
}

/// Computes the grid for window size `omega` from the previous level's grid
/// (or the raw plane for omega == 2). This is one iteration of the
/// outermost loop of Figure 5.
WindowSignatureGrid ComputeLevel(const std::vector<float>& plane, int width,
                                 int height, int s, int omega, int step,
                                 const WindowSignatureGrid* prev) {
  int dist = std::min(omega, step);
  int nx = (width - omega) / dist + 1;
  int ny = (height - omega) / dist + 1;
  int sig_n = std::min(omega, s);
  int p = sig_n;  // target block side = min(omega, s), Figure 5 step 7
  WindowSignatureGrid grid(omega, dist, nx, ny, sig_n);

  if (omega == 2) {
    // Subwindows are single pixels: read the image plane directly. With
    // dist == 2 and sig_n == 2 a whole grid row is the vectorized Haar base
    // case: adjacent windows read disjoint pixel pairs and their 2x2
    // signature blocks are contiguous (WindowSignatureGrid::SigAt), so one
    // kernel call covers the row bit-identically to the scalar loop.
    const bool vectorizable = (dist == 2 && sig_n == 2);
    const simd::KernelTable& kern = simd::Active();
    for (int iy = 0; iy < ny; ++iy) {
      int y0 = iy * dist;
      const float* row0 = plane.data() + static_cast<size_t>(y0) * width;
      const float* row1 = row0 + width;
      if (vectorizable) {
        kern.haar_base_2x2(row0, row1, nx, grid.SigAt(0, iy));
        continue;
      }
      for (int ix = 0; ix < nx; ++ix) {
        int x0 = ix * dist;
        ComputeSingleWindow(row0 + x0, row0 + x0 + 1, row1 + x0,
                            row1 + x0 + 1, /*src_stride=*/0,
                            grid.SigAt(ix, iy), sig_n, /*p=*/2);
      }
    }
    return grid;
  }

  int half = omega / 2;
  WALRUS_CHECK(prev != nullptr);
  WALRUS_CHECK_EQ(prev->window_size, half);
  // Every needed subwindow root is a multiple of the previous step.
  WALRUS_CHECK_EQ(half % prev->step, 0);
  WALRUS_CHECK_EQ(dist % prev->step, 0);
  int half_idx = half / prev->step;
  int step_idx = dist / prev->step;
  for (int iy = 0; iy < ny; ++iy) {
    int py = iy * step_idx;
    for (int ix = 0; ix < nx; ++ix) {
      int px = ix * step_idx;
      ComputeSingleWindow(prev->SigAt(px, py), prev->SigAt(px + half_idx, py),
                          prev->SigAt(px, py + half_idx),
                          prev->SigAt(px + half_idx, py + half_idx),
                          prev->sig_n, grid.SigAt(ix, iy), sig_n, p);
    }
  }
  return grid;
}

void ValidateArgs(const std::vector<float>& plane, int width, int height,
                  int s, int omega_max, int step) {
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(s)));
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(omega_max)) &&
               omega_max >= 2);
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(step)));
  WALRUS_CHECK_EQ(static_cast<int>(plane.size()), width * height);
  WALRUS_CHECK(omega_max <= width && omega_max <= height);
}

}  // namespace

void ComputeSingleWindow(const float* w1, const float* w2, const float* w3,
                         const float* w4, int src_stride, float* out,
                         int out_stride, int p) {
  WALRUS_DCHECK(IsPowerOfTwo(static_cast<uint32_t>(p)) && p >= 2);
  const float* srcs[4] = {w1, w2, w3, w4};
  while (p > 2) {
    CopyBlocks(srcs, src_stride, out, out_stride, p);
    p /= 2;
  }
  // Base case: horizontal + vertical averaging/differencing of the four
  // subwindow overall averages (Figure 4, steps 2-5).
  float a1 = w1[0];
  float a2 = w2[0];
  float a3 = w3[0];
  float a4 = w4[0];
  out[0] = (a1 + a2 + a3 + a4) / 4.0f;
  out[1] = (-a1 + a2 - a3 + a4) / 4.0f;                  // horizontal detail
  out[out_stride] = (-a1 - a2 + a3 + a4) / 4.0f;         // vertical detail
  out[out_stride + 1] = (a1 - a2 - a3 + a4) / 4.0f;      // diagonal detail
}

std::vector<WindowSignatureGrid> ComputeSlidingWindowSignatures(
    const std::vector<float>& plane, int width, int height, int s,
    int omega_max, int step) {
  ValidateArgs(plane, width, height, s, omega_max, step);
  std::vector<WindowSignatureGrid> levels;
  levels.reserve(Log2Floor(static_cast<uint32_t>(omega_max)));
  uint64_t windows = 0;
  for (int omega = 2; omega <= omega_max; omega *= 2) {
    const WindowSignatureGrid* prev = levels.empty() ? nullptr : &levels.back();
    levels.push_back(
        ComputeLevel(plane, width, height, s, omega, step, prev));
    windows += static_cast<uint64_t>(levels.back().WindowCount());
  }
  const SlidingWindowMetrics& metrics = SlidingWindowMetrics::Get();
  metrics.plane_computations->Increment();
  metrics.windows_computed->Increment(windows);
  return levels;
}

WindowSignatureGrid ComputeSlidingWindowSignaturesAt(
    const std::vector<float>& plane, int width, int height, int s, int omega,
    int step) {
  ValidateArgs(plane, width, height, s, omega, step);
  // Only the previous level is retained, giving the paper's N*S auxiliary
  // space bound instead of one grid per level.
  WindowSignatureGrid prev;
  uint64_t windows = 0;
  for (int level = 2; level <= omega; level *= 2) {
    WindowSignatureGrid current = ComputeLevel(
        plane, width, height, s, level, step, level == 2 ? nullptr : &prev);
    windows += static_cast<uint64_t>(current.WindowCount());
    prev = std::move(current);
  }
  const SlidingWindowMetrics& metrics = SlidingWindowMetrics::Get();
  metrics.plane_computations->Increment();
  metrics.windows_computed->Increment(windows);
  return prev;
}

}  // namespace walrus
