#ifndef WALRUS_WAVELET_WINDOW_GRID_H_
#define WALRUS_WAVELET_WINDOW_GRID_H_

#include <vector>

#include "common/default_init_allocator.h"
#include "common/check.h"

namespace walrus {

/// Wavelet signatures for every sliding window of one size over one image
/// channel. Window (ix, iy) is rooted at pixel (ix*step, iy*step); its
/// stored signature is the upper-left sig_n x sig_n block of the window's
/// (unnormalized) non-standard Haar transform, row-major.
///
/// sig_n = min(window_size, s_store): windows smaller than the requested
/// signature side keep their complete transform.
struct WindowSignatureGrid {
  int window_size = 0;
  int step = 0;
  int nx = 0;
  int ny = 0;
  int sig_n = 0;
  /// Uninitialized on construction (every slot is written exactly once by
  /// the DP sweep); see DefaultInitAllocator.
  std::vector<float, DefaultInitAllocator<float>> data;

  WindowSignatureGrid() = default;
  WindowSignatureGrid(int window_size_in, int step_in, int nx_in, int ny_in,
                      int sig_n_in)
      : window_size(window_size_in),
        step(step_in),
        nx(nx_in),
        ny(ny_in),
        sig_n(sig_n_in),
        data(static_cast<size_t>(nx_in) * ny_in * sig_n_in * sig_n_in) {}

  int SigFloats() const { return sig_n * sig_n; }

  float* SigAt(int ix, int iy) {
    WALRUS_DCHECK(ix >= 0 && ix < nx && iy >= 0 && iy < ny);
    return data.data() +
           (static_cast<size_t>(iy) * nx + ix) * SigFloats();
  }
  const float* SigAt(int ix, int iy) const {
    WALRUS_DCHECK(ix >= 0 && ix < nx && iy >= 0 && iy < ny);
    return data.data() +
           (static_cast<size_t>(iy) * nx + ix) * SigFloats();
  }

  /// Pixel coordinates of the window root for grid index (ix, iy).
  int RootX(int ix) const { return ix * step; }
  int RootY(int iy) const { return iy * step; }

  int64_t WindowCount() const { return static_cast<int64_t>(nx) * ny; }
};

}  // namespace walrus

#endif  // WALRUS_WAVELET_WINDOW_GRID_H_
