#include "wavelet/naive_window.h"

#include <algorithm>

#include "common/math_util.h"
#include "wavelet/haar2d.h"

#include "common/check.h"

namespace walrus {

WindowSignatureGrid ComputeNaiveWindowSignatures(
    const std::vector<float>& plane, int width, int height, int s, int window,
    int step) {
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(window)));
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(s)));
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(step)));
  WALRUS_CHECK_EQ(static_cast<int>(plane.size()), width * height);
  WALRUS_CHECK(window <= width && window <= height);

  int dist = std::min(window, step);
  int nx = (width - window) / dist + 1;
  int ny = (height - window) / dist + 1;
  int sig_n = std::min(window, s);
  WindowSignatureGrid grid(window, dist, nx, ny, sig_n);

  SquareMatrix box(window);
  for (int iy = 0; iy < ny; ++iy) {
    int y0 = iy * dist;
    for (int ix = 0; ix < nx; ++ix) {
      int x0 = ix * dist;
      for (int y = 0; y < window; ++y) {
        const float* row = plane.data() + static_cast<size_t>(y0 + y) * width;
        for (int x = 0; x < window; ++x) box.At(x, y) = row[x0 + x];
      }
      SquareMatrix transform = HaarNonStandard2D(box);
      float* sig = grid.SigAt(ix, iy);
      for (int y = 0; y < sig_n; ++y) {
        for (int x = 0; x < sig_n; ++x) sig[y * sig_n + x] = transform.At(x, y);
      }
    }
  }
  return grid;
}

}  // namespace walrus
