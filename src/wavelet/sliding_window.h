#ifndef WALRUS_WAVELET_SLIDING_WINDOW_H_
#define WALRUS_WAVELET_SLIDING_WINDOW_H_

#include <vector>

#include "wavelet/window_grid.h"

namespace walrus {

/// Dynamic-programming sliding-window wavelet signatures (paper section 5.2,
/// Figures 4 and 5). Signatures for omega x omega windows are assembled from
/// the stored signatures of their four omega/2 x omega/2 subwindows:
/// copyBlocks tiles the three detail quadrants, and the recursion bottoms
/// out by averaging/differencing the four subwindow averages. Total time is
/// O(N * S * log(omega_max)) for step 1, versus O(N * omega_max^2) naive.

/// Combines four subwindow signature matrices (row-major, side >= p/2,
/// stride `src_stride` floats per row) into the upper-left p x p block of
/// `out` (stride `out_stride`). This is procedure computeSingleWindow of
/// Figure 4: w1 = upper-left, w2 = upper-right, w3 = lower-left,
/// w4 = lower-right subwindow. p must be a power of two >= 2.
void ComputeSingleWindow(const float* w1, const float* w2, const float* w3,
                         const float* w4, int src_stride, float* out,
                         int out_stride, int p);

/// Procedure computeSlidingWindows of Figure 5: computes signature grids for
/// every window size omega = 2, 4, ..., omega_max. Element [k] of the result
/// holds windows of size 2^(k+1). `s` bounds the stored signature side
/// (min(omega, s) is kept per window), `step` is the slide distance t; all
/// three must be powers of two.
std::vector<WindowSignatureGrid> ComputeSlidingWindowSignatures(
    const std::vector<float>& plane, int width, int height, int s,
    int omega_max, int step);

/// Convenience: like above but returns only the grid for `omega`
/// (intermediate levels are still computed, as the DP requires).
WindowSignatureGrid ComputeSlidingWindowSignaturesAt(
    const std::vector<float>& plane, int width, int height, int s, int omega,
    int step);

}  // namespace walrus

#endif  // WALRUS_WAVELET_SLIDING_WINDOW_H_
