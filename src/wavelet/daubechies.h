#ifndef WALRUS_WAVELET_DAUBECHIES_H_
#define WALRUS_WAVELET_DAUBECHIES_H_

#include <vector>

#include "wavelet/haar2d.h"

namespace walrus {

/// Daubechies-4 (two vanishing moments) orthonormal wavelet transform with
/// periodic boundary handling. Used by the WBIIS baseline [WWFW98], which
/// applies 4- and 5-level transforms to 128x128 images.

/// One analysis step: input length must be even and >= 4. The first half of
/// the output receives the smooth (low-pass) coefficients, the second half
/// the detail (high-pass) coefficients.
void Daub4ForwardStep(const std::vector<float>& input,
                      std::vector<float>* output);

/// One synthesis step, inverse of Daub4ForwardStep.
void Daub4InverseStep(const std::vector<float>& input,
                      std::vector<float>* output);

/// Multi-level pyramid transform of a square image (Mallat ordering): at
/// each level one forward step is applied to every row then every column of
/// the current low-low block. `levels` must satisfy n / 2^levels >= 2.
SquareMatrix Daub4Transform2D(const SquareMatrix& image, int levels);

/// Inverse of Daub4Transform2D with the same `levels`.
SquareMatrix Daub4Inverse2D(const SquareMatrix& transform, int levels);

}  // namespace walrus

#endif  // WALRUS_WAVELET_DAUBECHIES_H_
