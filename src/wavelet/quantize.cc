#include "wavelet/quantize.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/math_util.h"

#include "common/check.h"

namespace walrus {

TruncatedSignature TruncateTransform(const SquareMatrix& transform, int keep) {
  WALRUS_CHECK_GE(keep, 0);
  TruncatedSignature sig;
  sig.average = transform.At(0, 0);

  struct Entry {
    float magnitude;
    int32_t index;
    int8_t sign;
  };
  std::vector<Entry> entries;
  entries.reserve(transform.values.size());
  for (int32_t i = 1; i < static_cast<int32_t>(transform.values.size()); ++i) {
    float v = transform.values[i];
    if (v == 0.0f) continue;
    entries.push_back({std::fabs(v), i, static_cast<int8_t>(v > 0 ? 1 : -1)});
  }
  int take = std::min<int>(keep, static_cast<int>(entries.size()));
  std::partial_sort(entries.begin(), entries.begin() + take, entries.end(),
                    [](const Entry& a, const Entry& b) {
                      if (a.magnitude != b.magnitude)
                        return a.magnitude > b.magnitude;
                      return a.index < b.index;
                    });
  sig.coefficients.reserve(take);
  for (int i = 0; i < take; ++i) {
    sig.coefficients.push_back({entries[i].index, entries[i].sign});
  }
  std::sort(sig.coefficients.begin(), sig.coefficients.end(),
            [](const QuantizedCoefficient& a, const QuantizedCoefficient& b) {
              return a.index < b.index;
            });
  return sig;
}

int JfsBin(int index, int n) {
  int x = index % n;
  int y = index / n;
  int lx = x > 0 ? Log2Floor(static_cast<uint32_t>(x)) : 0;
  int ly = y > 0 ? Log2Floor(static_cast<uint32_t>(y)) : 0;
  return std::min(std::max(lx, ly), 5);
}

float JfsScore(const TruncatedSignature& a, const TruncatedSignature& b, int n,
               const float bin_weights[6], float average_weight) {
  float score = average_weight * std::fabs(a.average - b.average);
  // Both coefficient lists are sorted by index: merge-intersect.
  size_t i = 0;
  size_t j = 0;
  while (i < a.coefficients.size() && j < b.coefficients.size()) {
    if (a.coefficients[i].index < b.coefficients[j].index) {
      ++i;
    } else if (a.coefficients[i].index > b.coefficients[j].index) {
      ++j;
    } else {
      if (a.coefficients[i].sign == b.coefficients[j].sign) {
        score -= bin_weights[JfsBin(a.coefficients[i].index, n)];
      }
      ++i;
      ++j;
    }
  }
  return score;
}

}  // namespace walrus
