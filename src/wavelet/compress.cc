#include "wavelet/compress.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/math_util.h"

#include "common/check.h"

namespace walrus {
namespace {

/// Pads a channel plane to side x side by edge replication.
SquareMatrix PadToSquare(const ImageF& image, int channel, int side) {
  SquareMatrix out(side);
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      out.At(x, y) = image.AtClamped(channel, x, y);
    }
  }
  return out;
}

}  // namespace

ImageF CompressImage(const ImageF& image, double keep_fraction) {
  WALRUS_CHECK(keep_fraction > 0.0 && keep_fraction <= 1.0);
  WALRUS_CHECK(!image.empty());
  int side = static_cast<int>(NextPowerOfTwo(
      static_cast<uint32_t>(std::max(image.width(), image.height()))));
  ImageF out(image.width(), image.height(), image.channels(),
             image.color_space());

  int total = side * side;
  int keep = std::max(1, static_cast<int>(keep_fraction * total));
  std::vector<float> magnitudes(total);

  for (int c = 0; c < image.channels(); ++c) {
    SquareMatrix transform = HaarNonStandard2D(PadToSquare(image, c, side));
    // Threshold in the normalized domain so coefficient importance is
    // resolution-weighted (section 3.1's normalization rationale).
    HaarNormalizeNonStandard(&transform);
    for (int i = 0; i < total; ++i) {
      magnitudes[i] = std::fabs(transform.values[i]);
    }
    // keep-th largest magnitude as the cut.
    std::vector<float> sorted = magnitudes;
    std::nth_element(sorted.begin(), sorted.begin() + (keep - 1), sorted.end(),
                     std::greater<float>());
    float cut = sorted[keep - 1];
    int kept = 0;
    for (int i = 0; i < total; ++i) {
      // Keep strictly-above always, ties only until the budget is filled;
      // the DC coefficient always survives.
      bool keep_this = i == 0 || magnitudes[i] > cut ||
                       (magnitudes[i] == cut && kept < keep);
      if (keep_this) {
        ++kept;
      } else {
        transform.values[i] = 0.0f;
      }
    }
    HaarDenormalizeNonStandard(&transform);
    SquareMatrix restored = HaarNonStandard2DInverse(transform);
    for (int y = 0; y < image.height(); ++y) {
      for (int x = 0; x < image.width(); ++x) {
        out.At(c, x, y) = Clamp(restored.At(x, y), 0.0f, 1.0f);
      }
    }
  }
  return out;
}

double MeanSquaredError(const ImageF& a, const ImageF& b) {
  WALRUS_CHECK_EQ(a.width(), b.width());
  WALRUS_CHECK_EQ(a.height(), b.height());
  WALRUS_CHECK_EQ(a.channels(), b.channels());
  double sum = 0.0;
  int64_t count = 0;
  for (int c = 0; c < a.channels(); ++c) {
    const std::vector<float>& pa = a.Plane(c);
    const std::vector<float>& pb = b.Plane(c);
    for (size_t i = 0; i < pa.size(); ++i) {
      double d = static_cast<double>(pa[i]) - pb[i];
      sum += d * d;
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double Psnr(const ImageF& a, const ImageF& b) {
  double mse = MeanSquaredError(a, b);
  if (mse <= 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(1.0 / mse);
}

double SignificantCoefficientFraction(const ImageF& image, float threshold) {
  WALRUS_CHECK(!image.empty());
  int side = static_cast<int>(NextPowerOfTwo(
      static_cast<uint32_t>(std::max(image.width(), image.height()))));
  double fraction_sum = 0.0;
  for (int c = 0; c < image.channels(); ++c) {
    SquareMatrix transform = HaarNonStandard2D(PadToSquare(image, c, side));
    HaarNormalizeNonStandard(&transform);
    int significant = 0;
    for (float v : transform.values) {
      if (std::fabs(v) > threshold) ++significant;
    }
    fraction_sum +=
        static_cast<double>(significant) / transform.values.size();
  }
  return fraction_sum / image.channels();
}

}  // namespace walrus
