#ifndef WALRUS_WAVELET_HAAR2D_H_
#define WALRUS_WAVELET_HAAR2D_H_

#include <vector>

#include "common/check.h"
#include "common/math_util.h"

namespace walrus {

/// Dense square matrix of floats used by the wavelet kernels. Element (x, y)
/// with x the column and y the row, matching the paper's [x, y] coordinates
/// (shifted to 0-based indices).
struct SquareMatrix {
  int n = 0;
  std::vector<float> values;

  SquareMatrix() = default;
  explicit SquareMatrix(int size)
      : n(size), values(static_cast<size_t>(size) * size, 0.0f) {
    WALRUS_CHECK_GE(size, 0);
  }

  float& At(int x, int y) {
    WALRUS_DCHECK(x >= 0 && x < n && y >= 0 && y < n);
    return values[static_cast<size_t>(y) * n + x];
  }
  float At(int x, int y) const {
    WALRUS_DCHECK(x >= 0 && x < n && y >= 0 && y < n);
    return values[static_cast<size_t>(y) * n + x];
  }

  bool AlmostEquals(const SquareMatrix& other, float tol = 1e-5f) const;
};

/// Non-standard two-dimensional Haar decomposition, exactly the
/// computeWavelet procedure of Figure 2 (unnormalized): one step of
/// horizontal then vertical pairwise averaging/differencing per 2x2 box,
/// details placed in the upper-right (horizontal), lower-left (vertical) and
/// lower-right (diagonal) quadrants, then recursion on the average quadrant.
/// `image.n` must be a power of two.
SquareMatrix HaarNonStandard2D(const SquareMatrix& image);

/// Inverse of HaarNonStandard2D.
SquareMatrix HaarNonStandard2DInverse(const SquareMatrix& transform);

/// Standard decomposition: full 1-D transform of every row, then of every
/// column (provided for completeness; WALRUS uses the non-standard form).
SquareMatrix HaarStandard2D(const SquareMatrix& image);
SquareMatrix HaarStandard2DInverse(const SquareMatrix& transform);

/// Normalizes a non-standard transform in place: detail coefficients whose
/// quadrant has side m = 2^g are divided by 2^g ("the normalization factor
/// is 2^i", section 3.2); the overall average is untouched.
void HaarNormalizeNonStandard(SquareMatrix* transform);

/// Undoes HaarNormalizeNonStandard.
void HaarDenormalizeNonStandard(SquareMatrix* transform);

/// Extracts the upper-left m x m block.
SquareMatrix UpperLeftBlock(const SquareMatrix& matrix, int m);

}  // namespace walrus

#endif  // WALRUS_WAVELET_HAAR2D_H_
