#ifndef WALRUS_WAVELET_COMPRESS_H_
#define WALRUS_WAVELET_COMPRESS_H_

#include "image/image.h"
#include "wavelet/haar2d.h"

namespace walrus {

/// Lossy wavelet compression (paper section 3.1: "truncating these small
/// coefficients from the transform introduces only small errors in the
/// reconstructed image, giving a form of 'lossy' image compression").
/// Exposed as a utility both to demonstrate the transform substrate and to
/// measure how much image structure the signatures discard.

/// Zeroes all but the `keep_fraction` largest-magnitude coefficients of the
/// (normalized-domain) transform of every channel and reconstructs.
/// Non-square / non-power-of-two images are padded by edge replication and
/// cropped back. keep_fraction in (0, 1].
ImageF CompressImage(const ImageF& image, double keep_fraction);

/// Mean squared error between two same-shaped images (all channels).
double MeanSquaredError(const ImageF& a, const ImageF& b);

/// Peak signal-to-noise ratio in dB (peak = 1.0); infinity when identical.
double Psnr(const ImageF& a, const ImageF& b);

/// Fraction of transform coefficients with magnitude above `threshold`,
/// averaged over channels (diagnostic for energy compaction).
double SignificantCoefficientFraction(const ImageF& image, float threshold);

}  // namespace walrus

#endif  // WALRUS_WAVELET_COMPRESS_H_
