#include "wavelet/daubechies.h"

#include <cmath>

#include "common/check.h"

namespace walrus {
namespace {

// Daubechies-4 scaling filter (orthonormal).
const float kSqrt3 = 1.7320508075688772f;
const float kDenom = 5.656854249492381f;  // 4 * sqrt(2)
const float kH0 = (1.0f + kSqrt3) / kDenom;
const float kH1 = (3.0f + kSqrt3) / kDenom;
const float kH2 = (3.0f - kSqrt3) / kDenom;
const float kH3 = (1.0f - kSqrt3) / kDenom;
// Wavelet filter g_k = (-1)^k h_{3-k}.
const float kG0 = kH3;
const float kG1 = -kH2;
const float kG2 = kH1;
const float kG3 = -kH0;

}  // namespace

void Daub4ForwardStep(const std::vector<float>& input,
                      std::vector<float>* output) {
  WALRUS_CHECK(output != nullptr);
  size_t n = input.size();
  WALRUS_CHECK(n >= 4 && n % 2 == 0);
  output->assign(n, 0.0f);
  size_t half = n / 2;
  for (size_t i = 0; i < half; ++i) {
    size_t k = 2 * i;
    float x0 = input[k];
    float x1 = input[(k + 1) % n];
    float x2 = input[(k + 2) % n];
    float x3 = input[(k + 3) % n];
    (*output)[i] = kH0 * x0 + kH1 * x1 + kH2 * x2 + kH3 * x3;
    (*output)[half + i] = kG0 * x0 + kG1 * x1 + kG2 * x2 + kG3 * x3;
  }
}

void Daub4InverseStep(const std::vector<float>& input,
                      std::vector<float>* output) {
  WALRUS_CHECK(output != nullptr);
  size_t n = input.size();
  WALRUS_CHECK(n >= 4 && n % 2 == 0);
  output->assign(n, 0.0f);
  size_t half = n / 2;
  // Transpose of the analysis matrix (orthonormal, so inverse == transpose).
  for (size_t i = 0; i < half; ++i) {
    float s = input[i];
    float d = input[half + i];
    size_t k = 2 * i;
    (*output)[k] += kH0 * s + kG0 * d;
    (*output)[(k + 1) % n] += kH1 * s + kG1 * d;
    (*output)[(k + 2) % n] += kH2 * s + kG2 * d;
    (*output)[(k + 3) % n] += kH3 * s + kG3 * d;
  }
}

SquareMatrix Daub4Transform2D(const SquareMatrix& image, int levels) {
  WALRUS_CHECK_GE(levels, 1);
  WALRUS_CHECK(image.n >> levels >= 2)
      << "too many levels (" << levels << ") for size " << image.n;
  SquareMatrix out = image;
  std::vector<float> line;
  std::vector<float> transformed;
  int m = image.n;
  for (int level = 0; level < levels; ++level) {
    line.resize(m);
    // Rows of the current low-low block.
    for (int y = 0; y < m; ++y) {
      for (int x = 0; x < m; ++x) line[x] = out.At(x, y);
      Daub4ForwardStep(line, &transformed);
      for (int x = 0; x < m; ++x) out.At(x, y) = transformed[x];
    }
    // Columns.
    for (int x = 0; x < m; ++x) {
      for (int y = 0; y < m; ++y) line[y] = out.At(x, y);
      Daub4ForwardStep(line, &transformed);
      for (int y = 0; y < m; ++y) out.At(x, y) = transformed[y];
    }
    m /= 2;
  }
  return out;
}

SquareMatrix Daub4Inverse2D(const SquareMatrix& transform, int levels) {
  WALRUS_CHECK_GE(levels, 1);
  WALRUS_CHECK(transform.n >> levels >= 2);
  SquareMatrix out = transform;
  std::vector<float> line;
  std::vector<float> restored;
  for (int level = levels - 1; level >= 0; --level) {
    int m = transform.n >> level;
    line.resize(m);
    for (int x = 0; x < m; ++x) {
      for (int y = 0; y < m; ++y) line[y] = out.At(x, y);
      Daub4InverseStep(line, &restored);
      for (int y = 0; y < m; ++y) out.At(x, y) = restored[y];
    }
    for (int y = 0; y < m; ++y) {
      for (int x = 0; x < m; ++x) line[x] = out.At(x, y);
      Daub4InverseStep(line, &restored);
      for (int x = 0; x < m; ++x) out.At(x, y) = restored[x];
    }
  }
  return out;
}

}  // namespace walrus
