#ifndef WALRUS_WAVELET_NAIVE_WINDOW_H_
#define WALRUS_WAVELET_NAIVE_WINDOW_H_

#include <vector>

#include "wavelet/window_grid.h"

namespace walrus {

/// Baseline signature computation (paper section 5.2 "naive scheme"): for
/// every window position the full omega x omega non-standard Haar transform
/// is computed from scratch and the upper-left min(omega, s) block kept.
/// Time O(N * omega^2); used by tests as ground truth and by the Figure 6
/// benchmarks as the comparison point.
///
/// `plane` is a row-major width x height channel; `window` and `s` must be
/// powers of two, `step` a positive power of two. Windows are rooted at
/// multiples of min(window, step), exactly like the DP algorithm.
WindowSignatureGrid ComputeNaiveWindowSignatures(
    const std::vector<float>& plane, int width, int height, int s, int window,
    int step);

}  // namespace walrus

#endif  // WALRUS_WAVELET_NAIVE_WINDOW_H_
