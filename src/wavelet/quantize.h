#ifndef WALRUS_WAVELET_QUANTIZE_H_
#define WALRUS_WAVELET_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "wavelet/haar2d.h"

namespace walrus {

/// Coefficient truncation + quantization in the style of Jacobs et al.
/// [JFS95]: keep only the `keep` largest-magnitude coefficients of a
/// transform (excluding the overall average) and record just their sign.

/// One retained coefficient: flat index into the transform and its sign.
struct QuantizedCoefficient {
  int32_t index = 0;
  int8_t sign = 0;  // +1 or -1
};

/// Sparse signature: the scaled overall average plus the signs of the
/// `keep` largest-magnitude detail coefficients.
struct TruncatedSignature {
  float average = 0.0f;
  std::vector<QuantizedCoefficient> coefficients;
};

/// Builds the truncated signature of a (normalized) transform. Ties are
/// broken by lower index for determinism.
TruncatedSignature TruncateTransform(const SquareMatrix& transform, int keep);

/// [JFS95] weighted score between two truncated signatures over an n x n
/// transform domain: starts from the weighted average difference and
/// subtracts a bin weight for every coefficient present in both with equal
/// sign. Lower is more similar. `bin_weights` has 6 entries indexed by
/// min(max(level_x, level_y), 5) as in the paper.
float JfsScore(const TruncatedSignature& a, const TruncatedSignature& b, int n,
               const float bin_weights[6], float average_weight);

/// The bin of a coefficient at flat `index` in an n x n transform:
/// min(max(floor(log2 x), floor(log2 y)), 5), with the DC term in bin 0.
int JfsBin(int index, int n);

}  // namespace walrus

#endif  // WALRUS_WAVELET_QUANTIZE_H_
