#ifndef WALRUS_WAVELET_HAAR1D_H_
#define WALRUS_WAVELET_HAAR1D_H_

#include <vector>

namespace walrus {

/// One-dimensional Haar wavelet decomposition (paper section 3.1).
///
/// For input [2, 2, 5, 7] the unnormalized transform is [4, 2, 0, 1]:
/// overall average first, then detail coefficients in order of increasing
/// resolution. Input length must be a power of two.
std::vector<float> HaarTransform1D(const std::vector<float>& input);

/// Inverse of HaarTransform1D (unnormalized coefficients).
std::vector<float> HaarInverse1D(const std::vector<float>& transform);

/// Normalizes coefficients in place per the paper: the detail group at
/// resolution level g (g = 0 is the coarsest detail, one coefficient at
/// index 1; the finest group fills the second half) is divided by sqrt(2)^g.
/// [4, 2, 0, 1] becomes [4, 2, 0, 1/sqrt(2)].
void HaarNormalize1D(std::vector<float>* transform);

/// Undoes HaarNormalize1D.
void HaarDenormalize1D(std::vector<float>* transform);

}  // namespace walrus

#endif  // WALRUS_WAVELET_HAAR1D_H_
