#include "wavelet/haar2d.h"

#include <cmath>

#include "wavelet/haar1d.h"

#include "common/check.h"

namespace walrus {

bool SquareMatrix::AlmostEquals(const SquareMatrix& other, float tol) const {
  if (n != other.n) return false;
  for (size_t i = 0; i < values.size(); ++i) {
    if (std::fabs(values[i] - other.values[i]) > tol) return false;
  }
  return true;
}

namespace {

/// One recursion step of Figure 2 restricted to the leading w x w block of
/// `work` (whose averages from the previous step live there), writing detail
/// quadrants into `out`.
void ComputeWaveletRec(SquareMatrix* work, SquareMatrix* out, int w) {
  int half = w / 2;
  SquareMatrix averages(half);
  for (int j = 0; j < half; ++j) {    // j indexes the 2x2 box row
    for (int i = 0; i < half; ++i) {  // i indexes the 2x2 box column
      float p00 = work->At(2 * i, 2 * j);
      float p10 = work->At(2 * i + 1, 2 * j);
      float p01 = work->At(2 * i, 2 * j + 1);
      float p11 = work->At(2 * i + 1, 2 * j + 1);
      averages.At(i, j) = (p00 + p10 + p01 + p11) / 4.0f;
      out->At(half + i, j) = (-p00 + p10 - p01 + p11) / 4.0f;  // horizontal
      out->At(i, half + j) = (-p00 - p10 + p01 + p11) / 4.0f;  // vertical
      out->At(half + i, half + j) = (p00 - p10 - p01 + p11) / 4.0f;  // diag
    }
  }
  if (w > 2) {
    for (int j = 0; j < half; ++j) {
      for (int i = 0; i < half; ++i) work->At(i, j) = averages.At(i, j);
    }
    ComputeWaveletRec(work, out, half);
  } else {
    out->At(0, 0) = averages.At(0, 0);
  }
}

/// Reverses one level: reconstructs the w x w average block from the
/// half-size averages plus the detail quadrants of `transform`.
void InverseWaveletRec(const SquareMatrix& transform, SquareMatrix* work,
                       int w) {
  int half = w / 2;
  SquareMatrix averages(half);
  if (w > 2) {
    InverseWaveletRec(transform, &averages, half);
  } else {
    averages.At(0, 0) = transform.At(0, 0);
  }
  for (int j = 0; j < half; ++j) {
    for (int i = 0; i < half; ++i) {
      float a = averages.At(i, j);
      float dh = transform.At(half + i, j);
      float dv = transform.At(i, half + j);
      float dd = transform.At(half + i, half + j);
      work->At(2 * i, 2 * j) = a - dh - dv + dd;
      work->At(2 * i + 1, 2 * j) = a + dh - dv - dd;
      work->At(2 * i, 2 * j + 1) = a - dh + dv - dd;
      work->At(2 * i + 1, 2 * j + 1) = a + dh + dv + dd;
    }
  }
}

}  // namespace

SquareMatrix HaarNonStandard2D(const SquareMatrix& image) {
  WALRUS_CHECK(image.n >= 1);
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(image.n)));
  if (image.n == 1) return image;
  SquareMatrix work = image;
  SquareMatrix out(image.n);
  ComputeWaveletRec(&work, &out, image.n);
  return out;
}

SquareMatrix HaarNonStandard2DInverse(const SquareMatrix& transform) {
  WALRUS_CHECK(transform.n >= 1);
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(transform.n)));
  if (transform.n == 1) return transform;
  SquareMatrix out(transform.n);
  InverseWaveletRec(transform, &out, transform.n);
  return out;
}

SquareMatrix HaarStandard2D(const SquareMatrix& image) {
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(image.n)));
  int n = image.n;
  SquareMatrix out(n);
  std::vector<float> line(n);
  // Rows.
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) line[x] = image.At(x, y);
    std::vector<float> t = HaarTransform1D(line);
    for (int x = 0; x < n; ++x) out.At(x, y) = t[x];
  }
  // Columns.
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) line[y] = out.At(x, y);
    std::vector<float> t = HaarTransform1D(line);
    for (int y = 0; y < n; ++y) out.At(x, y) = t[y];
  }
  return out;
}

SquareMatrix HaarStandard2DInverse(const SquareMatrix& transform) {
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(transform.n)));
  int n = transform.n;
  SquareMatrix out = transform;
  std::vector<float> line(n);
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) line[y] = out.At(x, y);
    std::vector<float> t = HaarInverse1D(line);
    for (int y = 0; y < n; ++y) out.At(x, y) = t[y];
  }
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) line[x] = out.At(x, y);
    std::vector<float> t = HaarInverse1D(line);
    for (int x = 0; x < n; ++x) out.At(x, y) = t[x];
  }
  return out;
}

void HaarNormalizeNonStandard(SquareMatrix* transform) {
  WALRUS_CHECK(transform != nullptr);
  int n = transform->n;
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(n)));
  // Quadrant group with side m: horizontal at x in [m, 2m), y in [0, m);
  // vertical and diagonal symmetric. Divisor 2^g with m = 2^g.
  for (int m = 1; m < n; m *= 2) {
    float divisor = static_cast<float>(m);
    for (int j = 0; j < m; ++j) {
      for (int i = 0; i < m; ++i) {
        transform->At(m + i, j) /= divisor;
        transform->At(i, m + j) /= divisor;
        transform->At(m + i, m + j) /= divisor;
      }
    }
  }
}

void HaarDenormalizeNonStandard(SquareMatrix* transform) {
  WALRUS_CHECK(transform != nullptr);
  int n = transform->n;
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(n)));
  for (int m = 1; m < n; m *= 2) {
    float factor = static_cast<float>(m);
    for (int j = 0; j < m; ++j) {
      for (int i = 0; i < m; ++i) {
        transform->At(m + i, j) *= factor;
        transform->At(i, m + j) *= factor;
        transform->At(m + i, m + j) *= factor;
      }
    }
  }
}

SquareMatrix UpperLeftBlock(const SquareMatrix& matrix, int m) {
  WALRUS_CHECK(m >= 0 && m <= matrix.n);
  SquareMatrix out(m);
  for (int y = 0; y < m; ++y) {
    for (int x = 0; x < m; ++x) out.At(x, y) = matrix.At(x, y);
  }
  return out;
}

}  // namespace walrus
