#include "wavelet/haar1d.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace walrus {

std::vector<float> HaarTransform1D(const std::vector<float>& input) {
  WALRUS_CHECK(!input.empty());
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(input.size())))
      << "Haar input length must be a power of two, got " << input.size();
  size_t n = input.size();
  std::vector<float> out(n);
  std::vector<float> averages = input;
  // Each pass halves the working length; details for length `len` land in
  // out[len/2, len).
  for (size_t len = n; len >= 2; len /= 2) {
    std::vector<float> next(len / 2);
    for (size_t i = 0; i < len / 2; ++i) {
      float a = averages[2 * i];
      float b = averages[2 * i + 1];
      next[i] = (a + b) / 2.0f;
      out[len / 2 + i] = (b - a) / 2.0f;
    }
    averages.swap(next);
  }
  out[0] = averages[0];
  return out;
}

std::vector<float> HaarInverse1D(const std::vector<float>& transform) {
  WALRUS_CHECK(!transform.empty());
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(transform.size())));
  size_t n = transform.size();
  std::vector<float> averages = {transform[0]};
  for (size_t len = 2; len <= n; len *= 2) {
    std::vector<float> next(len);
    for (size_t i = 0; i < len / 2; ++i) {
      float avg = averages[i];
      float detail = transform[len / 2 + i];
      next[2 * i] = avg - detail;
      next[2 * i + 1] = avg + detail;
    }
    averages.swap(next);
  }
  return averages;
}

void HaarNormalize1D(std::vector<float>* transform) {
  WALRUS_CHECK(transform != nullptr && !transform->empty());
  size_t n = transform->size();
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(n)));
  int group = 0;
  for (size_t start = 1; start < n; start *= 2, ++group) {
    float factor = std::pow(std::sqrt(2.0f), static_cast<float>(group));
    size_t count = start;  // group g spans indices [2^g, 2^{g+1})
    for (size_t i = 0; i < count; ++i) (*transform)[start + i] /= factor;
  }
}

void HaarDenormalize1D(std::vector<float>* transform) {
  WALRUS_CHECK(transform != nullptr && !transform->empty());
  size_t n = transform->size();
  WALRUS_CHECK(IsPowerOfTwo(static_cast<uint32_t>(n)));
  int group = 0;
  for (size_t start = 1; start < n; start *= 2, ++group) {
    float factor = std::pow(std::sqrt(2.0f), static_cast<float>(group));
    size_t count = start;
    for (size_t i = 0; i < count; ++i) (*transform)[start + i] *= factor;
  }
}

}  // namespace walrus
