#ifndef WALRUS_WAL_LIVE_INDEX_H_
#define WALRUS_WAL_LIVE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "core/index.h"
#include "core/ingest_engine.h"
#include "core/query.h"
#include "core/query_engine.h"
#include "core/result_cache.h"
#include "core/sharded_index.h"
#include "wal/wal.h"

namespace walrus {

/// Durable live-ingest engine (DESIGN.md section 14): an immutable,
/// STR-bulk-loaded sharded base plus an in-memory incremental delta index
/// and a tombstone set, fronted by a write-ahead log — the LSM shape of
/// tarantool's vinyl, sized down to one level.
///
/// Directory layout under `dir`:
///
///   wal.log        the write-ahead log (wal/wal.h framing)
///   MANIFEST       current base generation + the last LSN folded into it
///   base.<g>.*     sharded-index layout of base generation g
///                  (base.<g>.smeta + base.<g>.s<i>.{catalog,index})
///
/// Mutations append to the WAL (group-committed fsync) before they are
/// acknowledged; recovery replays every WAL record past the MANIFEST's
/// last-folded LSN. A merge folds base-minus-tombstones-plus-delta into a
/// bulk-loaded base generation g+1, fsyncs the new files, atomically
/// renames a new MANIFEST over the old (tmp + fsync + rename + dir fsync),
/// resets the WAL, and swaps the in-memory state — every crash point
/// either replays into the old generation or starts clean from the new.
///
/// **Ranking bit-identity.** Queries compose the public pipeline stages
/// (core/query_pipeline.h) over base shards and delta, filtering
/// tombstoned images before scoring. Because probe candidate sets are pure
/// functions of the indexed data (independent of tree layout and
/// partitioning), and RankMatches is a total order, the merged ranking is
/// bit-identical to an offline rebuild of the same live image set — the
/// invariant the golden ingest suite pins.
///
/// Thread-safety: concurrent queries, concurrent mutations, and queries
/// concurrent with mutations are all safe. Lock order: `ingest_mu_`
/// (serializes mutations and merges) before `state_mu_` (readers hold it
/// across a whole query pipeline; writers only for the brief apply/swap).
/// WAL fsync happens outside both locks so concurrent inserters share
/// group commits.
class LiveIndex : public QueryEngine, public IngestEngine {
 public:
  struct Options {
    /// Base partition count (>= 1); fixed at first boot, persisted in the
    /// MANIFEST, and authoritative on reopen.
    int num_shards = 1;
    /// Result-cache capacity in entries; 0 disables caching.
    size_t cache_capacity = 0;
    /// Delta images + tombstones that trigger a background merge;
    /// 0 = merge only when Merge() is called explicitly.
    size_t merge_threshold = 64;
    /// Save base shards with the paged (disk-tree) layout.
    bool paged_base = false;
  };

  /// Opens (or initializes) the live index rooted at `dir` (which must
  /// exist). First boot — no MANIFEST — partitions `seed` (nullptr = start
  /// empty) into base generation 1 and creates an empty WAL. Later boots
  /// ignore `seed` and `params`: the persisted base decides both, and the
  /// WAL's surviving records are replayed into the delta.
  [[nodiscard]] static Result<std::unique_ptr<LiveIndex>> Open(
      const std::string& dir, WalrusParams params, Options options,
      const WalrusIndex* seed = nullptr);

  LiveIndex(const LiveIndex&) = delete;
  LiveIndex& operator=(const LiveIndex&) = delete;
  ~LiveIndex() override;

  // -- QueryEngine ---------------------------------------------------------

  Result<std::vector<QueryMatch>> RunQuery(
      const ImageF& query_image, const QueryOptions& options,
      QueryStats* stats = nullptr) const override;

  Result<std::vector<QueryMatch>> RunSceneQuery(
      const ImageF& query_image, const PixelRect& scene,
      const QueryOptions& options, QueryStats* stats = nullptr) const override;

  size_t ImageCount() const override;
  size_t RegionCount() const override;
  EngineStats Stats() const override;

  // -- IngestEngine --------------------------------------------------------

  [[nodiscard]] Status InsertImage(uint64_t image_id, const std::string& name,
                                   const ImageF& image) override;
  [[nodiscard]] Status DeleteImage(uint64_t image_id) override;
  IngestStats IngestStatsSnapshot() const override;

  // -- Maintenance ---------------------------------------------------------

  /// Folds the delta and tombstones into base generation g+1, durably
  /// (snapshot + manifest swap + WAL reset). No-op when nothing changed
  /// since the last merge. Runs automatically past merge_threshold.
  [[nodiscard]] Status Merge() WALRUS_EXCLUDES(ingest_mu_, state_mu_);

  /// Blocks until no background merge is scheduled or running (tests).
  void WaitForMerge() WALRUS_EXCLUDES(merge_mu_);

  /// Current base generation (g of base.<g>).
  uint64_t generation() const WALRUS_EXCLUDES(state_mu_);

  /// True when `image_id` is live (in the delta, or in the base and not
  /// tombstoned). Tools and the crash-recovery harness use this to audit
  /// the recovered image set without mutating it.
  bool ContainsImage(uint64_t image_id) const WALRUS_EXCLUDES(state_mu_);

  const std::string& dir() const { return dir_; }
  const WalrusParams& params() const { return params_; }
  const ResultCache* result_cache() const { return cache_.get(); }

 private:
  LiveIndex(std::string dir, WalrusParams params, Options options);

  /// Decodes + applies one replayed WAL record to the delta/tombstones.
  [[nodiscard]] Status ApplyReplayRecord(const WalRecord& record)
      WALRUS_EXCLUDES(state_mu_);

  /// Applies a delete to the in-memory state. Caller holds ingest_mu_ (or
  /// is single-threaded recovery) and takes the state writer lock here.
  [[nodiscard]] Status ApplyDelete(uint64_t image_id)
      WALRUS_EXCLUDES(state_mu_);

  /// Schedules a background merge when the delta has outgrown the
  /// threshold and none is already queued.
  void MaybeScheduleMerge() WALRUS_EXCLUDES(merge_mu_);

  /// The live composition: probe + score base shards (minus tombstones)
  /// and delta, then rank. Caller holds the state reader lock.
  Result<std::vector<QueryMatch>> RunPipelineLive(
      const std::vector<Region>& query_regions, double query_area,
      const QueryOptions& options, QueryStats* stats) const
      WALRUS_REQUIRES_SHARED(state_mu_);

  /// Shared whole-image / scene query driver around RunPipelineLive.
  Result<std::vector<QueryMatch>> RunAnyQuery(
      const ImageF& query_image, const PixelRect* scene,
      const QueryOptions& options, QueryStats* stats) const
      WALRUS_EXCLUDES(state_mu_);

  const std::string dir_;
  const WalrusParams params_;
  const Options options_;

  std::unique_ptr<WriteAheadLog> wal_;
  std::unique_ptr<ResultCache> cache_;

  /// Serializes mutations and merges; never held while fsyncing the WAL.
  mutable Mutex ingest_mu_ WALRUS_ACQUIRED_BEFORE(state_mu_);

  /// Guards the queryable state. Query pipelines hold the reader side for
  /// their whole probe+score+rank pass; mutations and the merge swap take
  /// the writer side briefly.
  mutable SharedMutex state_mu_;
  std::unique_ptr<ShardedIndex> base_ WALRUS_GUARDED_BY(state_mu_);
  std::unique_ptr<WalrusIndex> delta_ WALRUS_GUARDED_BY(state_mu_);
  std::unordered_set<uint64_t> tombstones_ WALRUS_GUARDED_BY(state_mu_);
  /// Total regions belonging to tombstoned base images: the kNN
  /// over-provision bound (probe base with k + this, then filter).
  size_t tombstoned_regions_ WALRUS_GUARDED_BY(state_mu_) = 0;
  uint64_t generation_ WALRUS_GUARDED_BY(state_mu_) = 0;

  /// Background merge bookkeeping. merge_mu_ is leaf-level: never held
  /// while taking ingest_mu_ or state_mu_... except by the merge task
  /// itself, which releases it before calling Merge().
  mutable Mutex merge_mu_;
  CondVar merge_idle_cv_;
  bool merge_scheduled_ WALRUS_GUARDED_BY(merge_mu_) = false;

  /// Cumulative ingest counters (IngestStatsSnapshot).
  mutable Mutex counter_mu_;
  uint64_t inserts_ WALRUS_GUARDED_BY(counter_mu_) = 0;
  uint64_t deletes_ WALRUS_GUARDED_BY(counter_mu_) = 0;
  uint64_t merges_ WALRUS_GUARDED_BY(counter_mu_) = 0;

  /// Single-thread pool running background merges (created lazily on the
  /// first scheduled merge; joined in the destructor).
  mutable std::unique_ptr<ThreadPool> merge_pool_;
};

/// The live directory's manifest: which base generation is current and how
/// far the WAL has been folded into it. Exposed for tests and tooling.
struct LiveManifest {
  uint64_t generation = 0;
  /// Records with lsn <= last_lsn are part of the base; replay skips them.
  uint64_t last_lsn = 0;
  uint32_t num_shards = 1;
  bool paged = false;
};

/// Reads `<dir>/MANIFEST`. NotFound when the directory is uninitialized.
[[nodiscard]] Result<LiveManifest> ReadLiveManifest(const std::string& dir);

/// Durably replaces `<dir>/MANIFEST` (tmp + fsync + rename + dir fsync).
[[nodiscard]] Status WriteLiveManifest(const std::string& dir,
                                       const LiveManifest& manifest);

}  // namespace walrus

#endif  // WALRUS_WAL_LIVE_INDEX_H_
