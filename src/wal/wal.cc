#include "wal/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/serialize.h"

namespace walrus {

namespace {

/// Registry mirrors (OPERATIONS.md metrics catalog, "Live ingest" table).
struct WalMetrics {
  Counter* appends;
  Counter* bytes;
  Counter* syncs;
  Counter* replayed_records;
  Counter* dropped_tail_bytes;
  Counter* resets;

  static const WalMetrics& Get() {
    static const WalMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      WalMetrics m;
      m.appends = registry.GetCounter("walrus.wal.appends");
      m.bytes = registry.GetCounter("walrus.wal.bytes");
      m.syncs = registry.GetCounter("walrus.wal.syncs");
      m.replayed_records = registry.GetCounter("walrus.wal.replayed_records");
      m.dropped_tail_bytes =
          registry.GetCounter("walrus.wal.dropped_tail_bytes");
      m.resets = registry.GetCounter("walrus.wal.resets");
      return m;
    }();
    return metrics;
  }
};

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}

/// write() the whole buffer, retrying on EINTR / short writes.
Status WriteAll(int fd, const uint8_t* data, size_t size,
                const std::string& path) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncFd(int fd, const std::string& path) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ErrnoStatus("fsync", path);
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeWalHeader(uint64_t start_lsn) {
  BinaryWriter writer;
  writer.PutU32(kWalMagic);
  writer.PutU8(kWalFormatVersion);
  writer.PutU8(0);
  writer.PutU8(0);
  writer.PutU8(0);
  writer.PutU64(start_lsn);
  writer.PutU32(Crc32(writer.buffer().data(), writer.size()));
  WALRUS_CHECK_EQ(writer.size(), kWalHeaderBytes);
  return writer.TakeBuffer();
}

std::vector<uint8_t> EncodeWalRecord(uint64_t lsn, WalRecordType type,
                                     const std::vector<uint8_t>& body) {
  WALRUS_CHECK_LE(body.size(), kMaxWalRecordBytes);
  BinaryWriter writer;
  writer.PutU32(static_cast<uint32_t>(body.size()));
  writer.PutU64(lsn);
  writer.PutU8(static_cast<uint8_t>(type));
  writer.PutBytes(body.data(), body.size());
  writer.PutU32(Crc32(writer.buffer().data(), writer.size()));
  return writer.TakeBuffer();
}

Result<WalScan> WriteAheadLog::ScanBytes(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kWalHeaderBytes) {
    return Status::Corruption("wal: file shorter than its header (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  BinaryReader header(bytes.data(), kWalHeaderBytes);
  WALRUS_ASSIGN_OR_RETURN(uint32_t magic, header.GetU32());
  if (magic != kWalMagic) return Status::Corruption("wal: bad magic");
  WALRUS_ASSIGN_OR_RETURN(uint8_t version, header.GetU8());
  if (version != kWalFormatVersion) {
    return Status::Corruption("wal: unsupported format version " +
                              std::to_string(version));
  }
  for (int i = 0; i < 3; ++i) {
    WALRUS_ASSIGN_OR_RETURN(uint8_t reserved, header.GetU8());
    if (reserved != 0) return Status::Corruption("wal: nonzero reserved");
  }
  WalScan scan;
  WALRUS_ASSIGN_OR_RETURN(scan.start_lsn, header.GetU64());
  WALRUS_ASSIGN_OR_RETURN(uint32_t header_crc, header.GetU32());
  if (header_crc != Crc32(bytes.data(), kWalHeaderBytes - 4)) {
    return Status::Corruption("wal: header checksum mismatch");
  }

  // Record scan: every exit from this loop -- short length field, torn
  // body, oversized length, CRC mismatch, non-sequential LSN -- truncates
  // the log at the last record that fully verified. Only the prefix below
  // `pos` was ever acknowledged as durable in a consistent state.
  size_t pos = kWalHeaderBytes;
  uint64_t expected_lsn = scan.start_lsn;
  while (bytes.size() - pos >= kWalRecordOverhead) {
    BinaryReader frame(bytes.data() + pos, bytes.size() - pos);
    // The reads below cannot fail: remaining >= kWalRecordOverhead.
    uint32_t body_len = frame.GetU32().value();
    if (body_len > kMaxWalRecordBytes) break;
    size_t total = kWalRecordOverhead + body_len;
    if (bytes.size() - pos < total) break;  // torn tail
    BinaryReader trailer(bytes.data() + pos + total - 4, 4);
    uint32_t stored_crc = trailer.GetU32().value();
    if (stored_crc != Crc32(bytes.data() + pos, total - 4)) break;
    WalRecord record;
    record.lsn = frame.GetU64().value();
    if (record.lsn != expected_lsn) break;
    uint8_t raw_type = frame.GetU8().value();
    if (raw_type != static_cast<uint8_t>(WalRecordType::kInsertImage) &&
        raw_type != static_cast<uint8_t>(WalRecordType::kDeleteImage)) {
      break;  // unknown type: written by a future format; stop trusting
    }
    record.type = static_cast<WalRecordType>(raw_type);
    record.body.resize(body_len);
    if (body_len > 0) {
      Status copied = frame.GetBytes(record.body.data(), body_len);
      WALRUS_CHECK(copied.ok()) << copied;  // bounds proven above
    }
    scan.records.push_back(std::move(record));
    pos += total;
    ++expected_lsn;
  }
  scan.valid_bytes = pos;
  scan.dropped_bytes = bytes.size() - pos;
  return scan;
}

Result<WalScan> WriteAheadLog::ScanFile(const std::string& path) {
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  return ScanBytes(bytes);
}

WriteAheadLog::WriteAheadLog(std::string path, int fd, uint64_t next_lsn,
                             uint64_t file_bytes)
    : path_(std::move(path)),
      fd_(fd),
      next_lsn_(next_lsn),
      appended_lsn_(next_lsn - 1),
      synced_lsn_(next_lsn - 1),
      file_bytes_(file_bytes) {}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, WalScan* scan) {
  WALRUS_CHECK(scan != nullptr);
  *scan = WalScan{};

  bool exists = ::access(path.c_str(), F_OK) == 0;
  if (!exists) {
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
    if (fd < 0) return ErrnoStatus("create", path);
    std::vector<uint8_t> header = EncodeWalHeader(/*start_lsn=*/1);
    Status written = WriteAll(fd, header.data(), header.size(), path);
    if (written.ok()) written = FsyncFd(fd, path);
    if (!written.ok()) {
      ::close(fd);
      return written;
    }
    WALRUS_RETURN_IF_ERROR(SyncParentDir(path));
    scan->valid_bytes = kWalHeaderBytes;
    return std::unique_ptr<WriteAheadLog>(
        new WriteAheadLog(path, fd, /*next_lsn=*/1, kWalHeaderBytes));
  }

  WALRUS_ASSIGN_OR_RETURN(*scan, ScanFile(path));
  int fd = ::open(path.c_str(), O_RDWR, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  if (scan->dropped_bytes > 0) {
    // Drop the torn/corrupt tail so new appends extend the valid prefix
    // instead of burying garbage mid-file.
    if (::ftruncate(fd, static_cast<off_t>(scan->valid_bytes)) != 0) {
      Status status = ErrnoStatus("ftruncate", path);
      ::close(fd);
      return status;
    }
    Status synced = FsyncFd(fd, path);
    if (!synced.ok()) {
      ::close(fd);
      return synced;
    }
    WALRUS_LOG(Warning) << "wal: dropped " << scan->dropped_bytes
                        << " torn-tail byte(s) from " << path;
    WalMetrics::Get().dropped_tail_bytes->Increment(scan->dropped_bytes);
  }
  if (::lseek(fd, static_cast<off_t>(scan->valid_bytes), SEEK_SET) < 0) {
    Status status = ErrnoStatus("lseek", path);
    ::close(fd);
    return status;
  }
  WalMetrics::Get().replayed_records->Increment(scan->records.size());
  uint64_t next_lsn = scan->records.empty()
                          ? scan->start_lsn
                          : scan->records.back().lsn + 1;
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, fd, next_lsn, scan->valid_bytes));
}

Result<uint64_t> WriteAheadLog::Append(WalRecordType type,
                                       const std::vector<uint8_t>& body) {
  if (body.size() > kMaxWalRecordBytes) {
    return Status::InvalidArgument("wal: record body of " +
                                   std::to_string(body.size()) +
                                   " bytes exceeds the frame limit");
  }
  MutexLock lock(mu_);
  uint64_t lsn = next_lsn_;
  std::vector<uint8_t> frame = EncodeWalRecord(lsn, type, body);
  WALRUS_RETURN_IF_ERROR(WriteAll(fd_, frame.data(), frame.size(), path_));
  ++next_lsn_;
  appended_lsn_ = lsn;
  file_bytes_ += frame.size();
  ++appended_records_;
  appended_bytes_ += frame.size();
  WalMetrics::Get().appends->Increment();
  WalMetrics::Get().bytes->Increment(frame.size());
  return lsn;
}

Status WriteAheadLog::Commit(uint64_t lsn) {
  for (;;) {
    uint64_t target;
    {
      MutexLock lock(mu_);
      // Wait while someone else's fsync is in flight: it may already
      // cover our LSN (group commit), and two fsyncs cannot usefully
      // overlap on one descriptor anyway.
      while (synced_lsn_ < lsn && sync_in_progress_) sync_cv_.Wait(lock);
      if (synced_lsn_ >= lsn) return Status::OK();
      WALRUS_CHECK_LE(lsn, appended_lsn_);  // commit of an unappended LSN
      sync_in_progress_ = true;
      target = appended_lsn_;
    }
    // Leader: sync outside the lock so appenders are never blocked on
    // storage. Everything appended before the fsync call is covered.
    Status synced = FsyncFd(fd_, path_);
    {
      MutexLock lock(mu_);
      sync_in_progress_ = false;
      if (synced.ok()) {
        if (target > synced_lsn_) synced_lsn_ = target;
        ++syncs_;
        WalMetrics::Get().syncs->Increment();
      }
      sync_cv_.NotifyAll();
      if (!synced.ok()) return synced;
      if (synced_lsn_ >= lsn) return Status::OK();
    }
  }
}

Status WriteAheadLog::Reset(uint64_t start_lsn) {
  MutexLock lock(mu_);
  while (sync_in_progress_) sync_cv_.Wait(lock);
  if (::ftruncate(fd_, 0) != 0) return ErrnoStatus("ftruncate", path_);
  if (::lseek(fd_, 0, SEEK_SET) < 0) return ErrnoStatus("lseek", path_);
  std::vector<uint8_t> header = EncodeWalHeader(start_lsn);
  WALRUS_RETURN_IF_ERROR(WriteAll(fd_, header.data(), header.size(), path_));
  WALRUS_RETURN_IF_ERROR(FsyncFd(fd_, path_));
  next_lsn_ = start_lsn;
  appended_lsn_ = start_lsn - 1;
  synced_lsn_ = start_lsn - 1;
  file_bytes_ = kWalHeaderBytes;
  WalMetrics::Get().resets->Increment();
  return Status::OK();
}

WalStats WriteAheadLog::Stats() const {
  MutexLock lock(mu_);
  WalStats stats;
  stats.appended_records = appended_records_;
  stats.appended_bytes = appended_bytes_;
  stats.syncs = syncs_;
  stats.synced_lsn = synced_lsn_;
  stats.next_lsn = next_lsn_;
  stats.file_bytes = file_bytes_;
  return stats;
}

Status SyncFileForDurability(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path);
  Status synced = FsyncFd(fd, path);
  ::close(fd);
  return synced;
}

Status SyncParentDir(const std::string& path_in_dir) {
  std::string dir = ".";
  size_t slash = path_in_dir.find_last_of('/');
  if (slash != std::string::npos) dir = path_in_dir.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir", dir);
  Status synced = FsyncFd(fd, dir);
  ::close(fd);
  return synced;
}

}  // namespace walrus
