#include "wal/live_index.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "common/timer.h"
#include "core/query_pipeline.h"
#include "storage/catalog.h"

namespace walrus {
namespace {

constexpr uint32_t kManifestMagic = 0x574C494D;  // "WLIM"
constexpr uint32_t kManifestVersion = 1;

/// Registry mirrors (OPERATIONS.md metrics catalog, "Live ingest" table).
struct IngestMetrics {
  Counter* inserts;
  Counter* deletes;
  Counter* merges;
  Gauge* delta_images;
  Gauge* tombstones;

  static const IngestMetrics& Get() {
    static const IngestMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      IngestMetrics m;
      m.inserts = registry.GetCounter("walrus.ingest.inserts");
      m.deletes = registry.GetCounter("walrus.ingest.deletes");
      m.merges = registry.GetCounter("walrus.ingest.merges");
      m.delta_images = registry.GetGauge("walrus.ingest.delta_images");
      m.tombstones = registry.GetGauge("walrus.ingest.tombstones");
      return m;
    }();
    return metrics;
  }
};

/// The live engine feeds the same walrus.query.* funnel as the other
/// engines (the registry hands back the same instruments by name).
struct LiveQueryMetrics {
  Counter* queries;
  Counter* regions_retrieved;
  Counter* candidate_images;
  Histogram* seconds;
  Histogram* extract_seconds;

  static const LiveQueryMetrics& Get() {
    static const LiveQueryMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      std::vector<double> buckets = ExponentialBuckets(1e-6, 2.0, 36);
      LiveQueryMetrics m;
      m.queries = registry.GetCounter("walrus.query.count");
      m.regions_retrieved =
          registry.GetCounter("walrus.query.regions_retrieved");
      m.candidate_images =
          registry.GetCounter("walrus.query.candidate_images");
      m.seconds = registry.GetHistogram("walrus.query.seconds", buckets);
      m.extract_seconds =
          registry.GetHistogram("walrus.query.extract_seconds", buckets);
      return m;
    }();
    return metrics;
  }
};

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }
std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }
std::string BasePrefix(const std::string& dir, uint64_t generation) {
  return dir + "/base." + std::to_string(generation);
}
/// File-name prefix of every file of one base generation. The trailing dot
/// keeps "base.1" from matching "base.10.smeta".
std::string BaseFilePrefix(uint64_t generation) {
  return "base." + std::to_string(generation) + ".";
}

Result<std::vector<std::string>> ListMatchingFiles(
    const std::string& dir, const std::string& name_prefix) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError("opendir " + dir + ": " + std::strerror(errno));
  }
  std::vector<std::string> paths;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.rfind(name_prefix, 0) == 0) paths.push_back(dir + "/" + name);
  }
  ::closedir(d);
  return paths;
}

/// fsyncs every file of `name_prefix` in `dir`, then the directory itself:
/// the snapshot must be durable before the MANIFEST names it.
Status SyncBaseFiles(const std::string& dir, const std::string& name_prefix) {
  WALRUS_ASSIGN_OR_RETURN(std::vector<std::string> paths,
                          ListMatchingFiles(dir, name_prefix));
  if (paths.empty()) {
    return Status::Internal("live index: no base files matching " +
                            name_prefix + " in " + dir);
  }
  for (const std::string& path : paths) {
    WALRUS_RETURN_IF_ERROR(SyncFileForDurability(path));
  }
  return SyncParentDir(ManifestPath(dir));
}

/// Best-effort removal of a superseded base generation's files.
void UnlinkBaseFiles(const std::string& dir, const std::string& name_prefix) {
  Result<std::vector<std::string>> paths = ListMatchingFiles(dir, name_prefix);
  if (!paths.ok()) {
    WALRUS_LOG(Warning) << "live index: cannot list stale base files: "
                        << paths.status();
    return;
  }
  for (const std::string& path : *paths) {
    if (::unlink(path.c_str()) != 0) {
      WALRUS_LOG(Warning) << "live index: cannot unlink " << path << ": "
                          << std::strerror(errno);
    }
  }
}

std::vector<uint8_t> EncodeInsertBody(const ImageRecord& record) {
  BinaryWriter writer;
  record.Serialize(&writer);
  return writer.TakeBuffer();
}

std::vector<uint8_t> EncodeDeleteBody(uint64_t image_id) {
  BinaryWriter writer;
  writer.PutU64(image_id);
  return writer.TakeBuffer();
}

}  // namespace

Result<LiveManifest> ReadLiveManifest(const std::string& dir) {
  const std::string path = ManifestPath(dir);
  if (::access(path.c_str(), F_OK) != 0) {
    return Status::NotFound("live index: no MANIFEST in " + dir);
  }
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  if (bytes.size() < 4) return Status::Corruption("manifest: truncated");
  BinaryReader reader(bytes.data(), bytes.size() - 4);
  WALRUS_ASSIGN_OR_RETURN(uint32_t magic, reader.GetU32());
  if (magic != kManifestMagic) {
    return Status::Corruption("manifest: bad magic");
  }
  WALRUS_ASSIGN_OR_RETURN(uint32_t version, reader.GetU32());
  if (version != kManifestVersion) {
    return Status::Corruption("manifest: unsupported version " +
                              std::to_string(version));
  }
  LiveManifest manifest;
  WALRUS_ASSIGN_OR_RETURN(manifest.generation, reader.GetU64());
  WALRUS_ASSIGN_OR_RETURN(manifest.last_lsn, reader.GetU64());
  WALRUS_ASSIGN_OR_RETURN(manifest.num_shards, reader.GetU32());
  WALRUS_ASSIGN_OR_RETURN(uint8_t paged, reader.GetU8());
  manifest.paged = paged != 0;
  if (!reader.AtEnd()) return Status::Corruption("manifest: trailing bytes");
  BinaryReader trailer(bytes.data() + bytes.size() - 4, 4);
  WALRUS_ASSIGN_OR_RETURN(uint32_t stored_crc, trailer.GetU32());
  if (stored_crc != Crc32(bytes.data(), bytes.size() - 4)) {
    return Status::Corruption("manifest: checksum mismatch");
  }
  if (manifest.generation == 0 || manifest.num_shards == 0 ||
      manifest.num_shards > 4096) {
    return Status::Corruption("manifest: implausible contents");
  }
  return manifest;
}

Status WriteLiveManifest(const std::string& dir,
                         const LiveManifest& manifest) {
  BinaryWriter writer;
  writer.PutU32(kManifestMagic);
  writer.PutU32(kManifestVersion);
  writer.PutU64(manifest.generation);
  writer.PutU64(manifest.last_lsn);
  writer.PutU32(manifest.num_shards);
  writer.PutU8(manifest.paged ? 1 : 0);
  writer.PutU32(Crc32(writer.buffer().data(), writer.size()));
  const std::string path = ManifestPath(dir);
  const std::string tmp = path + ".tmp";
  WALRUS_RETURN_IF_ERROR(WriteFileBytes(tmp, writer.buffer()));
  WALRUS_RETURN_IF_ERROR(SyncFileForDurability(tmp));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename " + tmp + ": " + std::strerror(errno));
  }
  return SyncParentDir(path);
}

LiveIndex::LiveIndex(std::string dir, WalrusParams params, Options options)
    : dir_(std::move(dir)), params_(params), options_(options) {}

LiveIndex::~LiveIndex() {
  // Join any in-flight background merge before the state it uses dies.
  merge_pool_.reset();
}

Result<std::unique_ptr<LiveIndex>> LiveIndex::Open(const std::string& dir,
                                                   WalrusParams params,
                                                   Options options,
                                                   const WalrusIndex* seed) {
  options.num_shards = std::max(1, options.num_shards);

  Result<LiveManifest> existing = ReadLiveManifest(dir);
  LiveManifest manifest;
  if (existing.ok()) {
    manifest = *existing;
  } else if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();
  } else {
    // First boot: persist base generation 1 (the seed's images, or empty)
    // before the MANIFEST that names it exists.
    WalrusIndex empty(params);
    const WalrusIndex& source = seed != nullptr ? *seed : empty;
    ShardedIndex::Options shard_options;
    shard_options.num_shards = options.num_shards;
    WALRUS_ASSIGN_OR_RETURN(ShardedIndex base,
                            ShardedIndex::Partition(source, shard_options));
    WALRUS_RETURN_IF_ERROR(
        base.Save(BasePrefix(dir, 1), options.paged_base));
    WALRUS_RETURN_IF_ERROR(SyncBaseFiles(dir, BaseFilePrefix(1)));
    manifest.generation = 1;
    manifest.last_lsn = 0;
    manifest.num_shards = static_cast<uint32_t>(options.num_shards);
    manifest.paged = options.paged_base;
    WALRUS_RETURN_IF_ERROR(WriteLiveManifest(dir, manifest));
  }

  ShardedIndex::Options base_options;  // base carries no result cache
  base_options.num_shards = static_cast<int>(manifest.num_shards);
  WALRUS_ASSIGN_OR_RETURN(
      ShardedIndex base,
      ShardedIndex::Open(BasePrefix(dir, manifest.generation), base_options));

  // The persisted base is authoritative for params and shard count.
  WalrusParams live_params = base.params();
  options.num_shards = base.num_shards();
  options.paged_base = manifest.paged;
  std::unique_ptr<LiveIndex> live(
      new LiveIndex(dir, live_params, options));
  {
    WriterMutexLock lock(live->state_mu_);
    live->base_ = std::make_unique<ShardedIndex>(std::move(base));
    live->delta_ = std::make_unique<WalrusIndex>(live_params);
    live->generation_ = manifest.generation;
  }

  WalScan scan;
  WALRUS_ASSIGN_OR_RETURN(live->wal_,
                          WriteAheadLog::Open(WalPath(dir), &scan));
  size_t replayed = 0;
  for (const WalRecord& record : scan.records) {
    // Records at or below the manifest's watermark are already folded into
    // the base (a crash between the manifest rename and the WAL reset
    // leaves them behind); replaying them would double-apply.
    if (record.lsn <= manifest.last_lsn) continue;
    WALRUS_RETURN_IF_ERROR(live->ApplyReplayRecord(record));
    ++replayed;
  }
  if (replayed > 0) {
    WALRUS_LOG(Info) << "live index: replayed " << replayed
                     << " WAL record(s) into the delta";
  }

  if (options.cache_capacity > 0) {
    live->cache_ = std::make_unique<ResultCache>(options.cache_capacity);
  }
  if (options.merge_threshold > 0) {
    live->merge_pool_ = std::make_unique<ThreadPool>(1);
  }
  {
    ReaderMutexLock lock(live->state_mu_);
    IngestMetrics::Get().delta_images->Set(
        static_cast<int64_t>(live->delta_->ImageCount()));
    IngestMetrics::Get().tombstones->Set(
        static_cast<int64_t>(live->tombstones_.size()));
  }
  return live;
}

Status LiveIndex::ApplyReplayRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kInsertImage: {
      BinaryReader reader(record.body);
      WALRUS_ASSIGN_OR_RETURN(ImageRecord image,
                              ImageRecord::Deserialize(&reader));
      WriterMutexLock lock(state_mu_);
      return Annotate(delta_->AddImageRecord(std::move(image)),
                      "wal replay lsn " + std::to_string(record.lsn));
    }
    case WalRecordType::kDeleteImage: {
      BinaryReader reader(record.body);
      WALRUS_ASSIGN_OR_RETURN(uint64_t image_id, reader.GetU64());
      return Annotate(ApplyDelete(image_id),
                      "wal replay lsn " + std::to_string(record.lsn));
    }
  }
  return Status::Corruption("wal replay: unknown record type");
}

Status LiveIndex::ApplyDelete(uint64_t image_id) {
  WriterMutexLock lock(state_mu_);
  if (delta_->catalog().FindImage(image_id) != nullptr) {
    // An id can live in the delta while a tombstoned predecessor sits in a
    // base shard; removing the delta copy leaves that tombstone standing.
    return delta_->RemoveImage(image_id);
  }
  int shard = ShardedIndex::ShardOf(image_id, base_->num_shards());
  const ImageRecord* record =
      base_->shard(shard).catalog().FindImage(image_id);
  if (record == nullptr || tombstones_.count(image_id) > 0) {
    return Status::NotFound("image id " + std::to_string(image_id));
  }
  tombstones_.insert(image_id);
  tombstoned_regions_ += record->regions.size();
  return Status::OK();
}

Status LiveIndex::InsertImage(uint64_t image_id, const std::string& name,
                              const ImageF& image) {
  // Extraction (wavelets + clustering, the expensive part) runs outside
  // every lock: it is a pure function of the pixels and the fixed params.
  WALRUS_ASSIGN_OR_RETURN(
      ImageRecord record,
      WalrusIndex::ExtractImageRecord(params_, image_id, name, image));
  for (const RegionRecord& region : record.regions) {
    if (region.region_id >= (1u << 16)) {
      return Status::InvalidArgument("image produced more regions than the "
                                     "16-bit region payload can hold");
    }
  }
  std::vector<uint8_t> body = EncodeInsertBody(record);

  uint64_t lsn = 0;
  {
    MutexLock ingest(ingest_mu_);
    {
      ReaderMutexLock lock(state_mu_);
      // Liveness check: ingest_mu_ keeps it valid until the apply below.
      if (delta_->catalog().FindImage(image_id) != nullptr) {
        return Status::AlreadyExists("image id " + std::to_string(image_id));
      }
      int shard = ShardedIndex::ShardOf(image_id, base_->num_shards());
      if (base_->shard(shard).catalog().FindImage(image_id) != nullptr &&
          tombstones_.count(image_id) == 0) {
        return Status::AlreadyExists("image id " + std::to_string(image_id));
      }
    }
    // Log before apply: the WAL is the source of truth. The append is
    // buffered (no fsync yet); holding ingest_mu_ across it makes LSN
    // order equal apply order.
    WALRUS_ASSIGN_OR_RETURN(lsn,
                            wal_->Append(WalRecordType::kInsertImage, body));
    {
      WriterMutexLock lock(state_mu_);
      WALRUS_RETURN_IF_ERROR(delta_->AddImageRecord(std::move(record)));
      IngestMetrics::Get().delta_images->Set(
          static_cast<int64_t>(delta_->ImageCount()));
    }
  }
  // Durability outside both locks: concurrent inserters share one fsync
  // (group commit), and queries are never blocked on storage.
  WALRUS_RETURN_IF_ERROR(wal_->Commit(lsn));
  // Invalidate after apply: any reader that cached a pre-insert ranking
  // did so while holding the state reader lock, i.e. strictly before the
  // apply's writer lock — so this wipe cannot miss a stale entry.
  if (cache_ != nullptr) cache_->Invalidate();
  {
    MutexLock lock(counter_mu_);
    ++inserts_;
  }
  IngestMetrics::Get().inserts->Increment();
  MaybeScheduleMerge();
  return Status::OK();
}

Status LiveIndex::DeleteImage(uint64_t image_id) {
  std::vector<uint8_t> body = EncodeDeleteBody(image_id);
  uint64_t lsn = 0;
  {
    MutexLock ingest(ingest_mu_);
    {
      ReaderMutexLock lock(state_mu_);
      bool live_in_delta = delta_->catalog().FindImage(image_id) != nullptr;
      if (!live_in_delta) {
        int shard = ShardedIndex::ShardOf(image_id, base_->num_shards());
        if (base_->shard(shard).catalog().FindImage(image_id) == nullptr ||
            tombstones_.count(image_id) > 0) {
          return Status::NotFound("image id " + std::to_string(image_id));
        }
      }
    }
    WALRUS_ASSIGN_OR_RETURN(lsn,
                            wal_->Append(WalRecordType::kDeleteImage, body));
    WALRUS_RETURN_IF_ERROR(ApplyDelete(image_id));
    {
      ReaderMutexLock lock(state_mu_);
      IngestMetrics::Get().delta_images->Set(
          static_cast<int64_t>(delta_->ImageCount()));
      IngestMetrics::Get().tombstones->Set(
          static_cast<int64_t>(tombstones_.size()));
    }
  }
  WALRUS_RETURN_IF_ERROR(wal_->Commit(lsn));
  if (cache_ != nullptr) cache_->Invalidate();
  {
    MutexLock lock(counter_mu_);
    ++deletes_;
  }
  IngestMetrics::Get().deletes->Increment();
  MaybeScheduleMerge();
  return Status::OK();
}

void LiveIndex::MaybeScheduleMerge() {
  if (merge_pool_ == nullptr || options_.merge_threshold == 0) return;
  size_t pending;
  {
    ReaderMutexLock lock(state_mu_);
    pending = delta_->ImageCount() + tombstones_.size();
  }
  if (pending < options_.merge_threshold) return;
  {
    MutexLock lock(merge_mu_);
    if (merge_scheduled_) return;
    merge_scheduled_ = true;
  }
  merge_pool_->Submit([this] {
    Status status = Merge();
    if (!status.ok()) {
      WALRUS_LOG(Error) << "live index: background merge failed: " << status;
    }
    MutexLock lock(merge_mu_);
    merge_scheduled_ = false;
    merge_idle_cv_.NotifyAll();
  });
}

void LiveIndex::WaitForMerge() {
  MutexLock lock(merge_mu_);
  while (merge_scheduled_) merge_idle_cv_.Wait(lock);
}

Status LiveIndex::Merge() {
  MutexLock ingest(ingest_mu_);

  // Snapshot the live record set under the reader lock (mutations are
  // blocked by ingest_mu_; queries keep running throughout the build).
  std::vector<ImageRecord> records;
  uint64_t old_generation;
  int num_shards;
  {
    ReaderMutexLock lock(state_mu_);
    if (delta_->ImageCount() == 0 && tombstones_.empty()) {
      return Status::OK();
    }
    old_generation = generation_;
    num_shards = base_->num_shards();
    records.reserve(base_->ImageCount() + delta_->ImageCount());
    for (int s = 0; s < num_shards; ++s) {
      for (const ImageRecord& record : base_->shard(s).catalog().images()) {
        if (tombstones_.count(record.image_id) == 0) {
          records.push_back(record);
        }
      }
    }
    for (const ImageRecord& record : delta_->catalog().images()) {
      records.push_back(record);
    }
  }
  // Every appended record is about to be folded; ingest_mu_ keeps
  // next_lsn stable until the WAL reset below.
  const uint64_t next_start_lsn = wal_->Stats().next_lsn;
  const uint64_t new_generation = old_generation + 1;

  // Build + persist the next generation. Queries still read the old state.
  WALRUS_ASSIGN_OR_RETURN(WalrusIndex merged,
                          WalrusIndex::FromRecords(params_, std::move(records)));
  ShardedIndex::Options shard_options;
  shard_options.num_shards = num_shards;
  WALRUS_ASSIGN_OR_RETURN(ShardedIndex new_base,
                          ShardedIndex::Partition(merged, shard_options));
  WALRUS_RETURN_IF_ERROR(new_base.Save(BasePrefix(dir_, new_generation),
                                       options_.paged_base));
  WALRUS_RETURN_IF_ERROR(SyncBaseFiles(dir_, BaseFilePrefix(new_generation)));

  // Commit point: the renamed MANIFEST names the new generation. A crash
  // before this line replays the full WAL into the old base; after it,
  // replay skips everything at or below last_lsn.
  LiveManifest manifest;
  manifest.generation = new_generation;
  manifest.last_lsn = next_start_lsn - 1;
  manifest.num_shards = static_cast<uint32_t>(num_shards);
  manifest.paged = options_.paged_base;
  WALRUS_RETURN_IF_ERROR(WriteLiveManifest(dir_, manifest));

  {
    WriterMutexLock lock(state_mu_);
    base_ = std::make_unique<ShardedIndex>(std::move(new_base));
    delta_ = std::make_unique<WalrusIndex>(params_);
    tombstones_.clear();
    tombstoned_regions_ = 0;
    generation_ = new_generation;
  }
  IngestMetrics::Get().delta_images->Set(0);
  IngestMetrics::Get().tombstones->Set(0);
  // The manifest covers every folded record, so the log can restart. A
  // crash before this reset only costs a redundant-but-skipped replay.
  WALRUS_RETURN_IF_ERROR(wal_->Reset(next_start_lsn));
  UnlinkBaseFiles(dir_, BaseFilePrefix(old_generation));
  // No cache invalidation: a merge changes the physical layout, never the
  // live image set, and rankings are functions of the live set only.
  {
    MutexLock lock(counter_mu_);
    ++merges_;
  }
  IngestMetrics::Get().merges->Increment();
  return Status::OK();
}

Result<std::vector<QueryMatch>> LiveIndex::RunPipelineLive(
    const std::vector<Region>& query_regions, double query_area,
    const QueryOptions& options, QueryStats* stats) const {
  WallTimer timer;
  const LiveQueryMetrics& metrics = LiveQueryMetrics::Get();
  const int n = base_->num_shards();
  const bool use_bbox =
      params_.signature_kind == RegionSignatureKind::kBoundingBox;
  const bool knn = options.knn_per_region > 0 && !use_bbox;
  const bool have_delta = delta_->ImageCount() > 0;

  std::vector<QueryMatch> matches;
  ProbeDiagnostics total;
  int64_t regions_retrieved = 0;
  size_t distinct_images = 0;
  double probe_seconds = 0.0;
  double filter_seconds = 0.0;
  double match_seconds = 0.0;

  auto fold_diag = [&](const ProbeDiagnostics& diag) {
    regions_retrieved += diag.regions_retrieved;
    total.nodes_visited += diag.nodes_visited;
    total.pages_read += diag.pages_read;
    total.cache_hits += diag.cache_hits;
    total.cache_misses += diag.cache_misses;
    total.prefilter_candidates_in += diag.prefilter_candidates_in;
    total.prefilter_pruned += diag.prefilter_pruned;
    total.prefilter_candidates_out += diag.prefilter_candidates_out;
    // Parts run serially here, so the signature-tier slices sum.
    filter_seconds += diag.filter_seconds;
  };

  if (knn) {
    // Over-provision base probes so tombstoned regions cannot crowd live
    // ones out of a shard's top-k list: at most tombstoned_regions_ dead
    // entries can outrank any live entry, so k + that bound is exact.
    const int k = options.knn_per_region;
    const int k_eff = k + static_cast<int>(tombstoned_regions_);
    const size_t num_q = query_regions.size();
    std::vector<std::vector<std::pair<uint64_t, double>>> merged(num_q);
    WallTimer probe_timer;
    for (int s = 0; s < n; ++s) {
      ProbeDiagnostics diag;
      WALRUS_ASSIGN_OR_RETURN(
          auto neighbors,
          ProbeNearestPerRegion(base_->shard(s), query_regions, k_eff, &diag));
      fold_diag(diag);
      for (size_t qi = 0; qi < num_q; ++qi) {
        for (const auto& [payload, distance] : neighbors[qi]) {
          uint64_t image_id;
          uint32_t region_id;
          DecodeRegionPayload(payload, &image_id, &region_id);
          if (tombstones_.count(image_id) == 0) {
            merged[qi].emplace_back(payload, distance);
          }
        }
      }
    }
    if (have_delta) {
      ProbeDiagnostics diag;
      WALRUS_ASSIGN_OR_RETURN(
          auto neighbors,
          ProbeNearestPerRegion(*delta_, query_regions, k, &diag));
      fold_diag(diag);
      for (size_t qi = 0; qi < num_q; ++qi) {
        merged[qi].insert(merged[qi].end(), neighbors[qi].begin(),
                          neighbors[qi].end());
      }
    }
    probe_seconds = probe_timer.ElapsedSeconds();
    // Global top-k per query region, merged by (distance, payload) — the
    // same deterministic merge the sharded engine uses.
    for (auto& per_region : merged) {
      std::sort(per_region.begin(), per_region.end(),
                [](const std::pair<uint64_t, double>& a,
                   const std::pair<uint64_t, double>& b) {
                  if (a.second != b.second) return a.second < b.second;
                  return a.first < b.first;
                });
      if (static_cast<int>(per_region.size()) > k) per_region.resize(k);
    }
    std::vector<CandidateImage> candidates = CandidatesFromNeighbors(merged);
    distinct_images = candidates.size();

    WallTimer match_timer;
    // Route each candidate to the part that indexes it: the delta wins
    // when present (its tombstoned base predecessor was filtered above).
    std::vector<std::vector<CandidateImage>> by_part(n + 1);
    for (CandidateImage& candidate : candidates) {
      if (have_delta &&
          delta_->catalog().FindImage(candidate.image_id) != nullptr) {
        by_part[n].push_back(std::move(candidate));
      } else {
        by_part[ShardedIndex::ShardOf(candidate.image_id, n)].push_back(
            std::move(candidate));
      }
    }
    for (int s = 0; s <= n; ++s) {
      if (by_part[s].empty()) continue;
      const WalrusIndex& part = s == n ? *delta_ : base_->shard(s);
      WALRUS_ASSIGN_OR_RETURN(
          std::vector<QueryMatch> part_matches,
          ScoreCandidates(part, query_regions, query_area, options,
                          by_part[s]));
      matches.insert(matches.end(),
                     std::make_move_iterator(part_matches.begin()),
                     std::make_move_iterator(part_matches.end()));
    }
    match_seconds = match_timer.ElapsedSeconds();
  } else {
    // Epsilon mode: probe + score each part independently. Parts hold
    // disjoint live image sets (tombstones mask base copies of delta
    // ids), so match lists concatenate without collisions, and every
    // stage is deterministic in its part's data — the concatenation ranks
    // bit-identically to one offline index of the live set.
    auto run_part = [&](const WalrusIndex& part,
                        bool filter_tombstones) -> Status {
      ProbeDiagnostics diag;
      WallTimer probe_timer;
      Result<std::vector<CandidateImage>> candidates =
          ProbeCandidates(part, query_regions, options, &diag);
      // Keep stages disjoint: the signature tier timed itself inside the
      // probe call and is reported via filter_seconds.
      probe_seconds += probe_timer.ElapsedSeconds() - diag.filter_seconds;
      WALRUS_RETURN_IF_ERROR(candidates.status());
      fold_diag(diag);
      if (filter_tombstones && !tombstones_.empty()) {
        auto dead = [&](const CandidateImage& candidate) {
          return tombstones_.count(candidate.image_id) > 0;
        };
        candidates->erase(
            std::remove_if(candidates->begin(), candidates->end(), dead),
            candidates->end());
      }
      distinct_images += candidates->size();
      WallTimer match_timer;
      Result<std::vector<QueryMatch>> part_matches = ScoreCandidates(
          part, query_regions, query_area, options, *candidates);
      match_seconds += match_timer.ElapsedSeconds();
      WALRUS_RETURN_IF_ERROR(part_matches.status());
      matches.insert(matches.end(),
                     std::make_move_iterator(part_matches->begin()),
                     std::make_move_iterator(part_matches->end()));
      return Status::OK();
    };
    for (int s = 0; s < n; ++s) {
      WALRUS_RETURN_IF_ERROR(run_part(base_->shard(s), true));
    }
    if (have_delta) {
      WALRUS_RETURN_IF_ERROR(run_part(*delta_, false));
    }
  }

  double rank_seconds = 0.0;
  {
    WallTimer rank_timer;
    RankMatches(&matches, options.top_k);
    rank_seconds = rank_timer.ElapsedSeconds();
  }

  metrics.queries->Increment();
  metrics.regions_retrieved->Increment(
      static_cast<uint64_t>(regions_retrieved));
  metrics.candidate_images->Increment(distinct_images);
  metrics.seconds->Observe(timer.ElapsedSeconds());

  if (stats != nullptr) {
    stats->query_regions = static_cast<int>(query_regions.size());
    stats->regions_retrieved = regions_retrieved;
    stats->avg_regions_per_query_region =
        query_regions.empty()
            ? 0.0
            : static_cast<double>(regions_retrieved) / query_regions.size();
    stats->distinct_images = static_cast<int>(distinct_images);
    stats->seconds += timer.ElapsedSeconds();
    stats->probe_seconds = probe_seconds;
    stats->filter_seconds = filter_seconds;
    stats->match_seconds = match_seconds;
    stats->rank_seconds = rank_seconds;
    stats->prefilter_candidates_in = total.prefilter_candidates_in;
    stats->prefilter_pruned = total.prefilter_pruned;
    stats->prefilter_candidates_out = total.prefilter_candidates_out;
    stats->nodes_visited = total.nodes_visited;
    stats->pages_read = total.pages_read;
    stats->cache_hits = total.cache_hits;
    stats->cache_misses = total.cache_misses;
  }
  return matches;
}

Result<std::vector<QueryMatch>> LiveIndex::RunAnyQuery(
    const ImageF& query_image, const PixelRect* scene,
    const QueryOptions& options, QueryStats* stats) const {
  // Trace collection bypasses the cache, same as the sharded engine.
  const bool cacheable = cache_ != nullptr && !options.collect_trace;
  if (stats != nullptr) stats->result_cache_hit = false;
  ResultCache::Key key;
  if (cacheable) {
    key = scene != nullptr
              ? ResultCache::MakeKey(query_image, *scene, options)
              : ResultCache::MakeKey(query_image, options);
    if (auto cached = cache_->Lookup(key)) {
      if (stats != nullptr) stats->result_cache_hit = true;
      return std::move(*cached);
    }
  }
  QueryTrace storage;
  QueryTrace* trace =
      options.collect_trace && stats != nullptr ? &storage : nullptr;
  WallTimer timer;
  Result<ExtractedQuery> extracted =
      scene != nullptr
          ? ExtractSceneQueryRegions(query_image, *scene, params_, trace)
          : ExtractQueryRegions(query_image, params_, trace);
  WALRUS_RETURN_IF_ERROR(extracted.status());
  double extract_seconds = timer.ElapsedSeconds();
  LiveQueryMetrics::Get().extract_seconds->Observe(extract_seconds);
  if (stats != nullptr) {
    stats->seconds = extract_seconds;
    stats->extract_seconds = extract_seconds;
  }
  // The cache insert happens while still holding the reader lock: any
  // mutation that would invalidate this ranking has to wait for the
  // writer lock first, so its Invalidate() always runs after our Insert().
  ReaderMutexLock lock(state_mu_);
  auto result = RunPipelineLive(extracted->regions, extracted->query_area,
                                options, stats);
  if (cacheable && result.ok()) cache_->Insert(key, *result);
  if (trace != nullptr) stats->spans = trace->TakeSpans();
  return result;
}

Result<std::vector<QueryMatch>> LiveIndex::RunQuery(
    const ImageF& query_image, const QueryOptions& options,
    QueryStats* stats) const {
  return RunAnyQuery(query_image, nullptr, options, stats);
}

Result<std::vector<QueryMatch>> LiveIndex::RunSceneQuery(
    const ImageF& query_image, const PixelRect& scene,
    const QueryOptions& options, QueryStats* stats) const {
  return RunAnyQuery(query_image, &scene, options, stats);
}

size_t LiveIndex::ImageCount() const {
  ReaderMutexLock lock(state_mu_);
  return base_->ImageCount() - tombstones_.size() + delta_->ImageCount();
}

size_t LiveIndex::RegionCount() const {
  ReaderMutexLock lock(state_mu_);
  return base_->RegionCount() - tombstoned_regions_ + delta_->RegionCount();
}

EngineStats LiveIndex::Stats() const {
  EngineStats stats;
  {
    ReaderMutexLock lock(state_mu_);
    stats.num_shards = base_->num_shards();
  }
  if (cache_ != nullptr) {
    stats.result_cache_hits = cache_->hits();
    stats.result_cache_misses = cache_->misses();
    stats.result_cache_entries = cache_->size();
    stats.result_cache_capacity = cache_->capacity();
  }
  return stats;
}

IngestStats LiveIndex::IngestStatsSnapshot() const {
  IngestStats stats;
  {
    MutexLock lock(counter_mu_);
    stats.inserts = inserts_;
    stats.deletes = deletes_;
    stats.merges = merges_;
  }
  {
    ReaderMutexLock lock(state_mu_);
    stats.delta_images = delta_->ImageCount();
    stats.tombstones = tombstones_.size();
  }
  WalStats wal = wal_->Stats();
  stats.wal_records = wal.appended_records;
  stats.wal_bytes = wal.appended_bytes;
  stats.wal_syncs = wal.syncs;
  stats.wal_synced_lsn = wal.synced_lsn;
  stats.wal_file_bytes = wal.file_bytes;
  return stats;
}

uint64_t LiveIndex::generation() const {
  ReaderMutexLock lock(state_mu_);
  return generation_;
}

bool LiveIndex::ContainsImage(uint64_t image_id) const {
  ReaderMutexLock lock(state_mu_);
  if (delta_->catalog().FindImage(image_id) != nullptr) return true;
  int shard = ShardedIndex::ShardOf(image_id, base_->num_shards());
  return base_->shard(shard).catalog().FindImage(image_id) != nullptr &&
         tombstones_.count(image_id) == 0;
}

}  // namespace walrus
