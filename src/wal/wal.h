#ifndef WALRUS_WAL_WAL_H_
#define WALRUS_WAL_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace walrus {

/// Write-ahead log for catalog/index mutations (DESIGN.md section 14).
///
/// File layout (all integers little-endian, via common/serialize idioms):
///
///   header   offset  size  field
///            0       4     magic 0x4C415757 ("WWAL")
///            4       1     format version (kWalFormatVersion)
///            5       3     reserved (zero)
///            8       8     start LSN of this file (first record's LSN)
///            16      4     CRC-32 of bytes [0, 16)
///
///   record   offset  size  field
///            0       4     body length in bytes (<= kMaxWalRecordBytes)
///            4       8     LSN (strictly sequential from the file's start
///                          LSN; a gap or repeat ends the valid prefix)
///            12      1     record type (WalRecordType)
///            13      n     body
///            13+n    4     CRC-32 of bytes [0, 13+n)
///
/// The frame is length-prefixed and CRC-trailed exactly like the wire
/// protocol (server/protocol.h) and the storage pages (storage/page_file.h):
/// a reader can always determine where a record should end, and the CRC
/// decides whether what is there is real. Torn tails -- a crash mid-write
/// leaves a half record -- therefore truncate cleanly to the last record
/// whose CRC verifies; nothing after the first invalid byte is trusted.
inline constexpr uint32_t kWalMagic = 0x4C415757;  // "WWAL" on disk
/// v2: kInsertImage bodies carry the per-region binary signature words
/// (storage/catalog.h RegionRecord::signature). v1 files are rejected
/// cleanly at open rather than misparsed.
inline constexpr uint8_t kWalFormatVersion = 2;
inline constexpr size_t kWalHeaderBytes = 20;
/// Fixed bytes around a record body: length + LSN + type + CRC trailer.
inline constexpr size_t kWalRecordOverhead = 17;
/// Upper bound on a record body; larger length prefixes end the scan
/// before any allocation (a 4-byte length field must not OOM recovery).
inline constexpr uint32_t kMaxWalRecordBytes = 64u << 20;

/// Logical mutation kinds. The WAL logs post-extraction catalog state
/// (serialized ImageRecords), not pixels: replay re-applies metadata, it
/// never re-runs wavelets or clustering.
enum class WalRecordType : uint8_t {
  /// Body: ImageRecord (storage/catalog.h serialization).
  kInsertImage = 1,
  /// Body: u64 image id (tombstone).
  kDeleteImage = 2,
};

/// One decoded record.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kInsertImage;
  std::vector<uint8_t> body;
};

/// Result of scanning a WAL file: the valid record prefix plus where it
/// ended. `valid_bytes` is the file offset just past the last valid record
/// (recovery truncates there before appending); `dropped_bytes` is what the
/// scan discarded (torn tail, bit flips, garbage).
struct WalScan {
  std::vector<WalRecord> records;
  uint64_t start_lsn = 1;
  size_t valid_bytes = 0;
  size_t dropped_bytes = 0;
};

/// Counters surfaced through STATS / walrus_client (cumulative since this
/// process opened the log, except the LSN watermarks which are absolute).
struct WalStats {
  uint64_t appended_records = 0;
  uint64_t appended_bytes = 0;
  uint64_t syncs = 0;
  /// Highest LSN guaranteed durable (fsync completed past it).
  uint64_t synced_lsn = 0;
  /// LSN the next Append will be assigned.
  uint64_t next_lsn = 1;
  /// Current file size in bytes (header + records).
  uint64_t file_bytes = 0;
};

/// Append-only, CRC-framed write-ahead log with fsync'd group commit.
///
/// Durability contract: Append() assigns an LSN and buffers the record into
/// the OS file; Commit(lsn) returns OK only once an fsync covering that LSN
/// has completed. Concurrent committers share fsyncs: one caller becomes
/// the sync leader, syncs everything appended so far, and wakes the rest
/// (tarantool's xrow/wal batching shape). Appends are not blocked by an
/// in-flight fsync.
///
/// Thread-safe. All methods may be called from any thread.
class WriteAheadLog {
 public:
  /// Opens (or creates) the log at `path`. An existing file is scanned for
  /// its valid record prefix, truncated just past it (dropping any torn
  /// tail), and positioned for append; the scan -- every surviving record,
  /// in LSN order -- is returned through `scan` for the caller to replay.
  /// A corrupt header is an error (the caller decides whether to destroy),
  /// a corrupt tail is not.
  [[nodiscard]] static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, WalScan* scan);

  /// Read-only scan of a WAL file (tests, tooling, fuzzing). Never fails
  /// on tail corruption -- it reports how far the valid prefix reaches.
  /// Errors only on IO failure or a corrupt/missing header.
  [[nodiscard]] static Result<WalScan> ScanFile(const std::string& path);

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  ~WriteAheadLog();

  /// Appends one record, assigning the next LSN. The record is written to
  /// the file (not yet fsync'd) before the LSN is returned; call Commit to
  /// make it durable.
  [[nodiscard]] Result<uint64_t> Append(WalRecordType type,
                                        const std::vector<uint8_t>& body)
      WALRUS_EXCLUDES(mu_);

  /// Blocks until every record up to and including `lsn` is durable
  /// (group commit: piggybacks on another caller's fsync when possible).
  [[nodiscard]] Status Commit(uint64_t lsn) WALRUS_EXCLUDES(mu_);

  /// Truncates the log to an empty file whose next record will carry
  /// `start_lsn`, fsync'd before return. Called after a merge has folded
  /// every record below `start_lsn` into a durable base snapshot; the
  /// caller must ensure no Append races this (LiveIndex holds its ingest
  /// lock across the merge).
  [[nodiscard]] Status Reset(uint64_t start_lsn) WALRUS_EXCLUDES(mu_);

  WalStats Stats() const WALRUS_EXCLUDES(mu_);

  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, int fd, uint64_t next_lsn,
                uint64_t file_bytes);

  /// Scans `bytes` (a whole WAL file) into records; shared by Open and
  /// ScanFile. Header errors fail; tail corruption truncates.
  static Result<WalScan> ScanBytes(const std::vector<uint8_t>& bytes);

  std::string path_;
  /// Owns the file descriptor for the log's lifetime (closed in dtor).
  int fd_;

  mutable Mutex mu_;
  CondVar sync_cv_;
  uint64_t next_lsn_ WALRUS_GUARDED_BY(mu_);
  uint64_t appended_lsn_ WALRUS_GUARDED_BY(mu_);
  uint64_t synced_lsn_ WALRUS_GUARDED_BY(mu_);
  bool sync_in_progress_ WALRUS_GUARDED_BY(mu_) = false;
  uint64_t file_bytes_ WALRUS_GUARDED_BY(mu_);
  uint64_t appended_records_ WALRUS_GUARDED_BY(mu_) = 0;
  uint64_t appended_bytes_ WALRUS_GUARDED_BY(mu_) = 0;
  uint64_t syncs_ WALRUS_GUARDED_BY(mu_) = 0;
};

/// Encodes one record frame (exposed for tests and fuzzing: the fuzz suite
/// builds valid logs and then corrupts them).
std::vector<uint8_t> EncodeWalRecord(uint64_t lsn, WalRecordType type,
                                     const std::vector<uint8_t>& body);

/// Encodes a WAL file header for `start_lsn` (exposed for tests).
std::vector<uint8_t> EncodeWalHeader(uint64_t start_lsn);

/// fsyncs an existing file by path (used to make snapshot files durable
/// before the manifest that references them is renamed into place).
[[nodiscard]] Status SyncFileForDurability(const std::string& path);

/// fsyncs the directory containing `path_in_dir` so renames/creations in
/// it survive a crash.
[[nodiscard]] Status SyncParentDir(const std::string& path_in_dir);

}  // namespace walrus

#endif  // WALRUS_WAL_WAL_H_
