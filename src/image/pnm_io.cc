#include "image/pnm_io.h"

#include <cctype>
#include <cmath>

#include "common/math_util.h"
#include "common/serialize.h"
#include "common/status.h"

namespace walrus {
namespace {

uint8_t QuantizeSample(float v) {
  float scaled = Clamp(v, 0.0f, 1.0f) * 255.0f + 0.5f;
  return static_cast<uint8_t>(scaled);
}

/// Reads one whitespace/comment-separated ASCII token from a PNM header.
Result<std::string> NextToken(const std::vector<uint8_t>& bytes, size_t* pos) {
  size_t i = *pos;
  for (;;) {
    while (i < bytes.size() && std::isspace(bytes[i])) ++i;
    if (i < bytes.size() && bytes[i] == '#') {
      while (i < bytes.size() && bytes[i] != '\n') ++i;
      continue;
    }
    break;
  }
  if (i >= bytes.size()) return Status::Corruption("pnm: truncated header");
  size_t start = i;
  while (i < bytes.size() && !std::isspace(bytes[i])) ++i;
  std::string token(bytes.begin() + start, bytes.begin() + i);
  *pos = i;
  return token;
}

Result<int> NextInt(const std::vector<uint8_t>& bytes, size_t* pos) {
  WALRUS_ASSIGN_OR_RETURN(std::string token, NextToken(bytes, pos));
  int value = 0;
  for (char ch : token) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) {
      return Status::Corruption("pnm: bad integer token '" + token + "'");
    }
    value = value * 10 + (ch - '0');
    if (value > 1 << 26) return Status::Corruption("pnm: integer too large");
  }
  return value;
}

}  // namespace

Result<std::vector<uint8_t>> EncodePnm(const ImageF& image) {
  if (image.channels() != 1 && image.channels() != 3) {
    return Status::InvalidArgument("pnm: only 1- or 3-channel images");
  }
  if (image.empty()) return Status::InvalidArgument("pnm: empty image");
  std::string header = (image.channels() == 3 ? std::string("P6") : "P5");
  header += "\n" + std::to_string(image.width()) + " " +
            std::to_string(image.height()) + "\n255\n";
  std::vector<uint8_t> out(header.begin(), header.end());
  out.reserve(out.size() +
              static_cast<size_t>(image.PixelCount()) * image.channels());
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      for (int c = 0; c < image.channels(); ++c) {
        out.push_back(QuantizeSample(image.At(c, x, y)));
      }
    }
  }
  return out;
}

Result<ImageF> DecodePnm(const std::vector<uint8_t>& bytes) {
  size_t pos = 0;
  WALRUS_ASSIGN_OR_RETURN(std::string magic, NextToken(bytes, &pos));
  int channels;
  bool ascii = false;
  if (magic == "P6") {
    channels = 3;
  } else if (magic == "P5") {
    channels = 1;
  } else if (magic == "P3") {
    channels = 3;
    ascii = true;
  } else if (magic == "P2") {
    channels = 1;
    ascii = true;
  } else {
    return Status::Corruption("pnm: unsupported magic '" + magic + "'");
  }
  WALRUS_ASSIGN_OR_RETURN(int width, NextInt(bytes, &pos));
  WALRUS_ASSIGN_OR_RETURN(int height, NextInt(bytes, &pos));
  WALRUS_ASSIGN_OR_RETURN(int maxval, NextInt(bytes, &pos));
  if (width <= 0 || height <= 0) return Status::Corruption("pnm: bad size");
  if (maxval < 1 || maxval > 65535) {
    return Status::Corruption("pnm: bad maxval");
  }
  ImageF image(width, height, channels,
               channels == 3 ? ColorSpace::kRGB : ColorSpace::kGray);
  float scale = 1.0f / static_cast<float>(maxval);
  if (ascii) {
    // ASCII raster: whitespace-separated decimal samples.
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        for (int c = 0; c < channels; ++c) {
          WALRUS_ASSIGN_OR_RETURN(int sample, NextInt(bytes, &pos));
          if (sample > maxval) {
            return Status::Corruption("pnm: sample exceeds maxval");
          }
          image.At(c, x, y) = static_cast<float>(sample) * scale;
        }
      }
    }
    return image;
  }
  if (maxval != 255) {
    return Status::Corruption("pnm: binary rasters require maxval 255");
  }
  // Exactly one whitespace byte separates the header from the raster.
  if (pos >= bytes.size() || !std::isspace(bytes[pos])) {
    return Status::Corruption("pnm: missing raster separator");
  }
  ++pos;
  size_t need = static_cast<size_t>(width) * height * channels;
  if (bytes.size() - pos < need) {
    return Status::Corruption("pnm: truncated raster");
  }
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      for (int c = 0; c < channels; ++c) {
        image.At(c, x, y) = static_cast<float>(bytes[pos++]) / 255.0f;
      }
    }
  }
  return image;
}

Status WritePnm(const ImageF& image, const std::string& path) {
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, EncodePnm(image));
  return WriteFileBytes(path, bytes);
}

Result<ImageF> ReadPnm(const std::string& path) {
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  return DecodePnm(bytes);
}

}  // namespace walrus
