#include "image/image.h"

#include <cmath>

#include "common/math_util.h"

#include "common/check.h"

namespace walrus {

const char* ColorSpaceName(ColorSpace cs) {
  switch (cs) {
    case ColorSpace::kGray:
      return "Gray";
    case ColorSpace::kRGB:
      return "RGB";
    case ColorSpace::kYCC:
      return "YCC";
    case ColorSpace::kYIQ:
      return "YIQ";
    case ColorSpace::kHSV:
      return "HSV";
  }
  return "Unknown";
}

ImageF::ImageF(int width, int height, int channels, ColorSpace color_space)
    : width_(width),
      height_(height),
      channels_(channels),
      color_space_(color_space) {
  WALRUS_CHECK(width >= 0 && height >= 0 && channels >= 0);
  planes_.resize(channels);
  for (auto& plane : planes_) {
    plane.assign(static_cast<size_t>(width) * height, 0.0f);
  }
}

float ImageF::AtClamped(int c, int x, int y) const {
  x = Clamp(x, 0, width_ - 1);
  y = Clamp(y, 0, height_ - 1);
  return At(c, x, y);
}

void ImageF::Fill(float value) {
  for (auto& plane : planes_) {
    for (float& v : plane) v = value;
  }
}

void ImageF::SetPixel(int x, int y, const std::vector<float>& values) {
  WALRUS_DCHECK_EQ(static_cast<int>(values.size()), channels_);
  for (int c = 0; c < channels_; ++c) At(c, x, y) = values[c];
}

std::vector<float> ImageF::GetPixel(int x, int y) const {
  std::vector<float> values(channels_);
  for (int c = 0; c < channels_; ++c) values[c] = At(c, x, y);
  return values;
}

void ImageF::ClampToUnit() {
  for (auto& plane : planes_) {
    for (float& v : plane) v = Clamp(v, 0.0f, 1.0f);
  }
}

ImageF ImageF::Crop(int x, int y, int w, int h) const {
  WALRUS_CHECK(x >= 0 && y >= 0 && w >= 0 && h >= 0);
  WALRUS_CHECK(x + w <= width_ && y + h <= height_);
  ImageF out(w, h, channels_, color_space_);
  for (int c = 0; c < channels_; ++c) {
    for (int yy = 0; yy < h; ++yy) {
      for (int xx = 0; xx < w; ++xx) {
        out.At(c, xx, yy) = At(c, x + xx, y + yy);
      }
    }
  }
  return out;
}

double ImageF::ChannelMean(int c) const {
  WALRUS_DCHECK(c >= 0 && c < channels_);
  if (PixelCount() == 0) return 0.0;
  double sum = 0.0;
  for (float v : planes_[c]) sum += v;
  return sum / static_cast<double>(PixelCount());
}

bool ImageF::AlmostEquals(const ImageF& other, float tol) const {
  if (width_ != other.width_ || height_ != other.height_ ||
      channels_ != other.channels_) {
    return false;
  }
  for (int c = 0; c < channels_; ++c) {
    for (size_t i = 0; i < planes_[c].size(); ++i) {
      if (std::fabs(planes_[c][i] - other.planes_[c][i]) > tol) return false;
    }
  }
  return true;
}

}  // namespace walrus
