#ifndef WALRUS_IMAGE_DATASET_H_
#define WALRUS_IMAGE_DATASET_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "image/image.h"
#include "image/synth.h"

namespace walrus {

/// One generated scene with retrieval ground truth.
struct LabeledImage {
  int id = 0;
  /// Dominant object class (the retrieval label): images sharing it are
  /// mutually relevant.
  ObjectClass label = ObjectClass::kFlower;
  /// Background family index (diagnostics only).
  int background_kind = 0;
  /// Geometry of the dominant object instances (diagnostics / tests).
  struct Placement {
    int x = 0;
    int y = 0;
    int size = 0;
  };
  std::vector<Placement> placements;
  ImageF image;  // RGB
};

/// Knobs for the synthetic scene generator.
struct DatasetParams {
  int num_images = 200;
  int width = 128;
  int height = 128;
  uint64_t seed = 42;
  /// Dominant-object instances per image (inclusive range).
  int min_dominant = 1;
  int max_dominant = 3;
  /// Distractor objects of other classes per image (inclusive range).
  int min_distractors = 0;
  int max_distractors = 2;
  /// Dominant object size as a fraction of min(width, height).
  float min_scale = 0.3f;
  float max_scale = 0.65f;
  /// Gaussian pixel noise applied to the final scene (0 disables).
  float noise_sigma = 0.01f;
  /// Probability that the background is the label's natural habitat (fish
  /// on water, flowers on foliage, ...) rather than uniformly random. Real
  /// photo collections like the paper's `misc` dataset have exactly this
  /// correlation; 0 makes backgrounds independent of the label.
  float background_correlation = 0.5f;
};

/// Generates `params.num_images` scenes, labels cycling uniformly over the
/// object classes. Each scene composites 1..max_dominant instances of the
/// label class (random position + scale + style jitter) and a few smaller
/// distractors onto a randomized textured background. This reproduces the
/// translation/scaling-of-objects setting motivating the paper (Figure 1).
std::vector<LabeledImage> GenerateDataset(const DatasetParams& params);

/// Generates a single scene with the given label; `rng` drives all choices.
LabeledImage GenerateScene(int id, ObjectClass label,
                           const DatasetParams& params, Rng* rng);

/// Writes every image as <dir>/img_<id>.ppm plus a labels.txt manifest
/// ("id label background" per line). Creates nothing else; `dir` must exist.
Status SaveDataset(const std::vector<LabeledImage>& dataset,
                   const std::string& dir);

}  // namespace walrus

#endif  // WALRUS_IMAGE_DATASET_H_
