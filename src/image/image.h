#ifndef WALRUS_IMAGE_IMAGE_H_
#define WALRUS_IMAGE_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace walrus {

/// Identifies the color space of an ImageF's channels. Channel meaning:
///   kGray  : {luma}
///   kRGB   : {R, G, B}
///   kYCC   : {Y, Cb, Cr}  ("YCC" in the paper; JPEG YCbCr, all in [0,1])
///   kYIQ   : {Y, I', Q'}  (I/Q shifted+scaled into [0,1])
///   kHSV   : {H, S, V}    (H scaled into [0,1])
enum class ColorSpace : uint8_t {
  kGray = 0,
  kRGB = 1,
  kYCC = 2,
  kYIQ = 3,
  kHSV = 4,
};

const char* ColorSpaceName(ColorSpace cs);

/// Planar floating-point image. Pixel values are nominally in [0,1]; each
/// channel is stored as a contiguous row-major plane so per-channel wavelet
/// transforms stream through memory linearly.
///
/// Coordinates follow the paper's convention transposed to standard raster
/// order: (x, y) with x the column in [0, width) and y the row in [0, height).
class ImageF {
 public:
  /// Empty 0x0 image with no channels.
  ImageF() : width_(0), height_(0), channels_(0), color_space_(ColorSpace::kGray) {}

  /// Allocates a width x height image with `channels` zero-filled planes.
  ImageF(int width, int height, int channels,
         ColorSpace color_space = ColorSpace::kRGB);

  ImageF(const ImageF&) = default;
  ImageF& operator=(const ImageF&) = default;
  ImageF(ImageF&&) = default;
  ImageF& operator=(ImageF&&) = default;

  int width() const { return width_; }
  int height() const { return height_; }
  int channels() const { return channels_; }
  ColorSpace color_space() const { return color_space_; }
  void set_color_space(ColorSpace cs) { color_space_ = cs; }

  bool empty() const { return width_ == 0 || height_ == 0 || channels_ == 0; }
  int64_t PixelCount() const {
    return static_cast<int64_t>(width_) * height_;
  }

  /// Mutable/const access to pixel (x, y) of channel c. Bounds are
  /// debug-checked only; this is the hot path.
  float& At(int c, int x, int y) {
    WALRUS_DCHECK(InBounds(c, x, y));
    return planes_[c][static_cast<size_t>(y) * width_ + x];
  }
  float At(int c, int x, int y) const {
    WALRUS_DCHECK(InBounds(c, x, y));
    return planes_[c][static_cast<size_t>(y) * width_ + x];
  }

  /// Clamped read: coordinates outside the image are clamped to the border.
  float AtClamped(int c, int x, int y) const;

  /// Whole plane for channel c (row-major, height*width floats).
  std::vector<float>& Plane(int c) {
    WALRUS_DCHECK(c >= 0 && c < channels_);
    return planes_[c];
  }
  const std::vector<float>& Plane(int c) const {
    WALRUS_DCHECK(c >= 0 && c < channels_);
    return planes_[c];
  }

  /// Sets every sample of every channel to `value`.
  void Fill(float value);

  /// Sets pixel (x, y) across all channels from `values` (size == channels).
  void SetPixel(int x, int y, const std::vector<float>& values);

  /// Reads pixel (x, y) across all channels.
  std::vector<float> GetPixel(int x, int y) const;

  /// Clamps every sample into [0,1].
  void ClampToUnit();

  /// Extracts the sub-image [x, x+w) x [y, y+h); must be fully inside.
  ImageF Crop(int x, int y, int w, int h) const;

  /// Mean of channel c over the whole image.
  double ChannelMean(int c) const;

  /// True if the two images have identical shape and all samples differ by
  /// at most `tol`.
  bool AlmostEquals(const ImageF& other, float tol = 1e-6f) const;

  /// Total bytes of sample storage (diagnostics).
  size_t StorageBytes() const {
    return static_cast<size_t>(channels_) * PixelCount() * sizeof(float);
  }

 private:
  bool InBounds(int c, int x, int y) const {
    return c >= 0 && c < channels_ && x >= 0 && x < width_ && y >= 0 &&
           y < height_;
  }

  int width_;
  int height_;
  int channels_;
  ColorSpace color_space_;
  std::vector<std::vector<float>> planes_;
};

}  // namespace walrus

#endif  // WALRUS_IMAGE_IMAGE_H_
