#include "image/color.h"

#include <cmath>

#include "common/math_util.h"
#include "common/status.h"

namespace walrus {

void RgbToYccPixel(float r, float g, float b, float* y, float* cb, float* cr) {
  *y = 0.299f * r + 0.587f * g + 0.114f * b;
  *cb = -0.168736f * r - 0.331264f * g + 0.5f * b + 0.5f;
  *cr = 0.5f * r - 0.418688f * g - 0.081312f * b + 0.5f;
}

void YccToRgbPixel(float y, float cb, float cr, float* r, float* g, float* b) {
  float cb0 = cb - 0.5f;
  float cr0 = cr - 0.5f;
  *r = y + 1.402f * cr0;
  *g = y - 0.344136f * cb0 - 0.714136f * cr0;
  *b = y + 1.772f * cb0;
}

void RgbToYiqPixel(float r, float g, float b, float* y, float* i, float* q) {
  float iraw = 0.595716f * r - 0.274453f * g - 0.321263f * b;  // [-0.5957, 0.5957]
  float qraw = 0.211456f * r - 0.522591f * g + 0.311135f * b;  // [-0.5226, 0.5226]
  *y = 0.299f * r + 0.587f * g + 0.114f * b;
  *i = iraw / (2.0f * 0.595716f) + 0.5f;
  *q = qraw / (2.0f * 0.522591f) + 0.5f;
}

void YiqToRgbPixel(float y, float i, float q, float* r, float* g, float* b) {
  float iraw = (i - 0.5f) * 2.0f * 0.595716f;
  float qraw = (q - 0.5f) * 2.0f * 0.522591f;
  *r = y + 0.9563f * iraw + 0.6210f * qraw;
  *g = y - 0.2721f * iraw - 0.6474f * qraw;
  *b = y - 1.1070f * iraw + 1.7046f * qraw;
}

void RgbToHsvPixel(float r, float g, float b, float* h, float* s, float* v) {
  float maxc = std::fmax(r, std::fmax(g, b));
  float minc = std::fmin(r, std::fmin(g, b));
  float delta = maxc - minc;
  *v = maxc;
  *s = maxc > 0.0f ? delta / maxc : 0.0f;
  if (delta <= 0.0f) {
    *h = 0.0f;
    return;
  }
  float hue;
  if (maxc == r) {
    hue = std::fmod((g - b) / delta, 6.0f);
  } else if (maxc == g) {
    hue = (b - r) / delta + 2.0f;
  } else {
    hue = (r - g) / delta + 4.0f;
  }
  hue /= 6.0f;
  if (hue < 0.0f) hue += 1.0f;
  *h = hue;
}

void HsvToRgbPixel(float h, float s, float v, float* r, float* g, float* b) {
  float hh = h * 6.0f;
  int sector = static_cast<int>(hh) % 6;
  if (sector < 0) sector += 6;
  float f = hh - std::floor(hh);
  float p = v * (1.0f - s);
  float q = v * (1.0f - s * f);
  float t = v * (1.0f - s * (1.0f - f));
  switch (sector) {
    case 0: *r = v; *g = t; *b = p; break;
    case 1: *r = q; *g = v; *b = p; break;
    case 2: *r = p; *g = v; *b = t; break;
    case 3: *r = p; *g = q; *b = v; break;
    case 4: *r = t; *g = p; *b = v; break;
    default: *r = v; *g = p; *b = q; break;
  }
}

namespace {

using PixelConverter = void (*)(float, float, float, float*, float*, float*);

ImageF ConvertWith(const ImageF& in, ColorSpace target, PixelConverter fn) {
  ImageF out(in.width(), in.height(), 3, target);
  for (int y = 0; y < in.height(); ++y) {
    for (int x = 0; x < in.width(); ++x) {
      float a, b, c;
      fn(in.At(0, x, y), in.At(1, x, y), in.At(2, x, y), &a, &b, &c);
      out.At(0, x, y) = Clamp(a, 0.0f, 1.0f);
      out.At(1, x, y) = Clamp(b, 0.0f, 1.0f);
      out.At(2, x, y) = Clamp(c, 0.0f, 1.0f);
    }
  }
  return out;
}

Result<ImageF> ToRgb(const ImageF& image) {
  switch (image.color_space()) {
    case ColorSpace::kRGB:
      return image;
    case ColorSpace::kYCC:
      return ConvertWith(image, ColorSpace::kRGB, &YccToRgbPixel);
    case ColorSpace::kYIQ:
      return ConvertWith(image, ColorSpace::kRGB, &YiqToRgbPixel);
    case ColorSpace::kHSV:
      return ConvertWith(image, ColorSpace::kRGB, &HsvToRgbPixel);
    case ColorSpace::kGray: {
      ImageF out(image.width(), image.height(), 3, ColorSpace::kRGB);
      for (int y = 0; y < image.height(); ++y) {
        for (int x = 0; x < image.width(); ++x) {
          float v = image.At(0, x, y);
          out.At(0, x, y) = v;
          out.At(1, x, y) = v;
          out.At(2, x, y) = v;
        }
      }
      return out;
    }
  }
  return Status::InvalidArgument("unknown source color space");
}

}  // namespace

Result<ImageF> ConvertColorSpace(const ImageF& image, ColorSpace target) {
  if (image.color_space() == target) return image;
  if (image.channels() != 3 && image.color_space() != ColorSpace::kGray) {
    return Status::InvalidArgument(
        "color conversion requires a 3-channel image");
  }
  WALRUS_ASSIGN_OR_RETURN(ImageF rgb, ToRgb(image));
  switch (target) {
    case ColorSpace::kRGB:
      return rgb;
    case ColorSpace::kYCC:
      return ConvertWith(rgb, ColorSpace::kYCC, &RgbToYccPixel);
    case ColorSpace::kYIQ:
      return ConvertWith(rgb, ColorSpace::kYIQ, &RgbToYiqPixel);
    case ColorSpace::kHSV:
      return ConvertWith(rgb, ColorSpace::kHSV, &RgbToHsvPixel);
    case ColorSpace::kGray: {
      ImageF out(rgb.width(), rgb.height(), 1, ColorSpace::kGray);
      for (int y = 0; y < rgb.height(); ++y) {
        for (int x = 0; x < rgb.width(); ++x) {
          out.At(0, x, y) = 0.299f * rgb.At(0, x, y) +
                            0.587f * rgb.At(1, x, y) +
                            0.114f * rgb.At(2, x, y);
        }
      }
      return out;
    }
  }
  return Status::InvalidArgument("unknown target color space");
}

ImageF ShiftIntensity(const ImageF& image, float delta) {
  ImageF out = image;
  for (int c = 0; c < out.channels(); ++c) {
    for (float& v : out.Plane(c)) v = Clamp(v + delta, 0.0f, 1.0f);
  }
  return out;
}

}  // namespace walrus
