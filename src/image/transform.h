#ifndef WALRUS_IMAGE_TRANSFORM_H_
#define WALRUS_IMAGE_TRANSFORM_H_

#include "common/random.h"
#include "image/image.h"

namespace walrus {

enum class ResizeFilter { kNearest, kBilinear, kBoxAverage };

/// Resamples `image` to new_width x new_height. kBoxAverage averages the
/// covered source box (good for downscaling); kBilinear interpolates (good
/// for upscaling); kNearest picks the closest sample.
ImageF Resize(const ImageF& image, int new_width, int new_height,
              ResizeFilter filter = ResizeFilter::kBilinear);

/// Mirrors the image horizontally (left-right).
ImageF FlipHorizontal(const ImageF& image);

/// Mirrors the image vertically (top-bottom).
ImageF FlipVertical(const ImageF& image);

/// Rotates by 90 degrees clockwise.
ImageF Rotate90(const ImageF& image);

/// Rotates by an arbitrary angle (degrees, clockwise) about the image
/// center with bilinear resampling; pixels sampled from outside take
/// `fill`. Output has the same dimensions (corners are clipped).
ImageF Rotate(const ImageF& image, float degrees, float fill = 0.0f);

/// Shifts content by (dx, dy); vacated pixels take `fill`. Positive dx moves
/// content right, positive dy moves it down.
ImageF Translate(const ImageF& image, int dx, int dy, float fill = 0.0f);

/// Shifts content by (dx, dy) with toroidal wrap-around.
ImageF TranslateWrap(const ImageF& image, int dx, int dy);

/// Pastes `patch` onto `canvas` with its upper-left corner at (x, y).
/// Out-of-canvas parts of the patch are clipped. If `mask` is non-null it
/// must match the patch size; mask values in [0,1] alpha-blend the patch.
void Composite(ImageF* canvas, const ImageF& patch, int x, int y,
               const ImageF* mask = nullptr);

/// Adds zero-mean Gaussian noise with standard deviation `sigma` to every
/// sample and clamps to [0,1] (simulates sensor noise / dithering effects).
ImageF AddGaussianNoise(const ImageF& image, float sigma, Rng* rng);

/// Quantizes every sample to `levels` levels (posterize; simulates color
/// reduction / dithering artifacts the paper claims robustness against).
ImageF Posterize(const ImageF& image, int levels);

}  // namespace walrus

#endif  // WALRUS_IMAGE_TRANSFORM_H_
