#include "image/synth.h"

#include <cmath>
#include <vector>

#include "common/math_util.h"

#include "common/check.h"

namespace walrus {

Color3 LerpColor(const Color3& a, const Color3& b, float t) {
  return Color3{a.r + (b.r - a.r) * t, a.g + (b.g - a.g) * t,
                a.b + (b.b - a.b) * t};
}

namespace {

void PutColor(ImageF* img, int x, int y, const Color3& c) {
  img->At(0, x, y) = Clamp(c.r, 0.0f, 1.0f);
  img->At(1, x, y) = Clamp(c.g, 0.0f, 1.0f);
  img->At(2, x, y) = Clamp(c.b, 0.0f, 1.0f);
}

Color3 JitterColor(const Color3& c, float amount, Rng* rng) {
  auto wobble = [&](float v) {
    return Clamp(v + amount * static_cast<float>(rng->NextDouble(-1.0, 1.0)),
                 0.0f, 1.0f);
  };
  return Color3{wobble(c.r), wobble(c.g), wobble(c.b)};
}

/// Single-octave value-noise lattice with bilinear smoothing.
class NoiseLattice {
 public:
  NoiseLattice(int cells_x, int cells_y, Rng* rng)
      : cells_x_(cells_x), cells_y_(cells_y),
        values_(static_cast<size_t>(cells_x + 1) * (cells_y + 1)) {
    for (float& v : values_) v = rng->NextFloat();
  }

  /// u, v in [0,1] across the image.
  float Sample(float u, float v) const {
    float fx = u * cells_x_;
    float fy = v * cells_y_;
    int x0 = Clamp(static_cast<int>(fx), 0, cells_x_ - 1);
    int y0 = Clamp(static_cast<int>(fy), 0, cells_y_ - 1);
    float tx = SmoothStep(fx - x0);
    float ty = SmoothStep(fy - y0);
    float v00 = ValueAt(x0, y0);
    float v10 = ValueAt(x0 + 1, y0);
    float v01 = ValueAt(x0, y0 + 1);
    float v11 = ValueAt(x0 + 1, y0 + 1);
    float top = v00 + (v10 - v00) * tx;
    float bot = v01 + (v11 - v01) * tx;
    return top + (bot - top) * ty;
  }

 private:
  static float SmoothStep(float t) { return t * t * (3.0f - 2.0f * t); }
  float ValueAt(int x, int y) const {
    return values_[static_cast<size_t>(y) * (cells_x_ + 1) + x];
  }

  int cells_x_;
  int cells_y_;
  std::vector<float> values_;
};

}  // namespace

ImageF MakeSolid(int w, int h, const Color3& color) {
  ImageF img(w, h, 3, ColorSpace::kRGB);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) PutColor(&img, x, y, color);
  }
  return img;
}

ImageF MakeLinearGradient(int w, int h, const Color3& from, const Color3& to,
                          bool horizontal) {
  ImageF img(w, h, 3, ColorSpace::kRGB);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float t = horizontal ? (w > 1 ? static_cast<float>(x) / (w - 1) : 0.0f)
                           : (h > 1 ? static_cast<float>(y) / (h - 1) : 0.0f);
      PutColor(&img, x, y, LerpColor(from, to, t));
    }
  }
  return img;
}

ImageF MakeCheckerboard(int w, int h, int cell, const Color3& c0,
                        const Color3& c1) {
  WALRUS_CHECK_GE(cell, 1);
  ImageF img(w, h, 3, ColorSpace::kRGB);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      bool odd = ((x / cell) + (y / cell)) % 2 == 1;
      PutColor(&img, x, y, odd ? c1 : c0);
    }
  }
  return img;
}

ImageF MakeStripes(int w, int h, int period, bool horizontal, const Color3& c0,
                   const Color3& c1) {
  WALRUS_CHECK_GE(period, 2);
  ImageF img(w, h, 3, ColorSpace::kRGB);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int k = horizontal ? y : x;
      bool odd = (k / (period / 2)) % 2 == 1;
      PutColor(&img, x, y, odd ? c1 : c0);
    }
  }
  return img;
}

ImageF MakeValueNoise(int w, int h, int scale, const Color3& c0,
                      const Color3& c1, Rng* rng, int octaves) {
  WALRUS_CHECK_GE(scale, 2);
  WALRUS_CHECK_GE(octaves, 1);
  ImageF img(w, h, 3, ColorSpace::kRGB);
  std::vector<NoiseLattice> lattices;
  lattices.reserve(octaves);
  for (int o = 0; o < octaves; ++o) {
    int cells = std::max(1, (w >> o) / scale + 1);
    lattices.emplace_back(cells, std::max(1, (h >> o) / scale + 1), rng);
  }
  float total_amp = 0.0f;
  for (int o = 0; o < octaves; ++o) total_amp += std::pow(0.5f, o);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float u = w > 1 ? static_cast<float>(x) / (w - 1) : 0.0f;
      float v = h > 1 ? static_cast<float>(y) / (h - 1) : 0.0f;
      float n = 0.0f;
      float amp = 1.0f;
      for (int o = 0; o < octaves; ++o) {
        n += amp * lattices[o].Sample(u, v);
        amp *= 0.5f;
      }
      PutColor(&img, x, y, LerpColor(c0, c1, n / total_amp));
    }
  }
  return img;
}

ImageF MakeBrickWall(int w, int h, int brick_w, int brick_h, int mortar,
                     const Color3& brick, const Color3& grout, Rng* rng) {
  WALRUS_CHECK(brick_w > 0 && brick_h > 0 && mortar >= 1);
  ImageF img(w, h, 3, ColorSpace::kRGB);
  int course_h = brick_h + mortar;
  int course_w = brick_w + mortar;
  // Per-brick shade variation, keyed by course/brick indices.
  for (int y = 0; y < h; ++y) {
    int course = y / course_h;
    int y_in = y % course_h;
    int offset = (course % 2) * (course_w / 2);
    for (int x = 0; x < w; ++x) {
      int xx = x + offset;
      int x_in = xx % course_w;
      bool is_mortar = y_in >= brick_h || x_in >= brick_w;
      if (is_mortar) {
        PutColor(&img, x, y, grout);
      } else {
        // Deterministic shade per brick using a small hash of indices.
        uint32_t key = static_cast<uint32_t>(course * 2654435761u) ^
                       static_cast<uint32_t>((xx / course_w) * 40503u);
        float shade = 0.85f + 0.3f * static_cast<float>((key >> 8) & 0xff) / 255.0f;
        PutColor(&img, x, y,
                 Color3{brick.r * shade, brick.g * shade, brick.b * shade});
      }
    }
  }
  // Light speckle so bricks are not perfectly flat.
  for (int i = 0; i < w * h / 32; ++i) {
    int x = rng->NextInt(0, w - 1);
    int y = rng->NextInt(0, h - 1);
    float d = 0.05f * static_cast<float>(rng->NextDouble(-1.0, 1.0));
    for (int c = 0; c < 3; ++c) {
      img.At(c, x, y) = Clamp(img.At(c, x, y) + d, 0.0f, 1.0f);
    }
  }
  return img;
}

ImageF MakeGrass(int w, int h, const Color3& base, Rng* rng) {
  ImageF img = MakeValueNoise(w, h, 6, Color3{base.r * 0.6f, base.g * 0.7f, base.b * 0.6f},
                              base, rng, 3);
  // Vertical streaks: darken thin columns.
  for (int streak = 0; streak < w / 2; ++streak) {
    int x = rng->NextInt(0, w - 1);
    int y0 = rng->NextInt(0, h - 1);
    int len = rng->NextInt(3, std::max(4, h / 6));
    float shade = 0.8f + 0.3f * rng->NextFloat();
    for (int y = y0; y < std::min(h, y0 + len); ++y) {
      for (int c = 0; c < 3; ++c) {
        img.At(c, x, y) = Clamp(img.At(c, x, y) * shade, 0.0f, 1.0f);
      }
    }
  }
  return img;
}

const char* ObjectClassName(ObjectClass cls) {
  switch (cls) {
    case ObjectClass::kFlower:
      return "flower";
    case ObjectClass::kSun:
      return "sun";
    case ObjectClass::kBall:
      return "ball";
    case ObjectClass::kFish:
      return "fish";
    case ObjectClass::kStar:
      return "star";
    case ObjectClass::kLeaf:
      return "leaf";
  }
  return "unknown";
}

namespace {

/// Fills patch/mask via a signed-distance-like inside() predicate evaluated
/// in object-local coordinates u, v in [-1, 1].
template <typename InsideFn, typename ColorFn>
void RasterizeObject(int size, InsideFn inside, ColorFn color, ImageF* patch,
                     ImageF* mask) {
  *patch = ImageF(size, size, 3, ColorSpace::kRGB);
  *mask = ImageF(size, size, 1, ColorSpace::kGray);
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      float u = 2.0f * (x + 0.5f) / size - 1.0f;
      float v = 2.0f * (y + 0.5f) / size - 1.0f;
      float cover = inside(u, v);  // 0..1 soft coverage
      if (cover > 0.0f) {
        PutColor(patch, x, y, color(u, v));
        mask->At(0, x, y) = Clamp(cover, 0.0f, 1.0f);
      }
    }
  }
}

/// Soft threshold: full coverage below edge-soft, zero above edge.
float SoftInside(float d, float edge, float soft = 0.08f) {
  if (d <= edge - soft) return 1.0f;
  if (d >= edge) return 0.0f;
  return (edge - d) / soft;
}

void RenderFlower(int size, const ObjectStyle& style, Rng* rng, ImageF* patch,
                  ImageF* mask) {
  int petals = rng->NextInt(5, 8);
  float petal_depth = 0.25f + style.shape_jitter * rng->NextFloat();
  float phase = static_cast<float>(rng->NextDouble(0.0, 2.0 * M_PI));
  Color3 petal = JitterColor(Color3{0.85f, 0.12f, 0.18f}, style.hue_jitter, rng);
  Color3 petal_edge = JitterColor(Color3{0.95f, 0.45f, 0.55f}, style.hue_jitter, rng);
  Color3 core = JitterColor(Color3{0.95f, 0.8f, 0.2f}, style.hue_jitter, rng);
  float core_r = 0.25f;
  auto radius_at = [=](float theta) {
    return 0.75f + petal_depth * std::cos(petals * theta + phase);
  };
  RasterizeObject(
      size,
      [=](float u, float v) {
        float r = std::sqrt(u * u + v * v);
        float theta = std::atan2(v, u);
        return SoftInside(r, radius_at(theta));
      },
      [=](float u, float v) {
        float r = std::sqrt(u * u + v * v);
        if (r < core_r) return core;
        float t = Clamp((r - core_r) / (1.0f - core_r), 0.0f, 1.0f);
        return LerpColor(petal, petal_edge, t);
      },
      patch, mask);
}

void RenderSun(int size, const ObjectStyle& style, Rng* rng, ImageF* patch,
               ImageF* mask) {
  Color3 center = JitterColor(Color3{1.0f, 0.95f, 0.6f}, style.hue_jitter, rng);
  Color3 rim = JitterColor(Color3{0.98f, 0.55f, 0.15f}, style.hue_jitter, rng);
  float radius = 0.9f - 0.2f * style.shape_jitter * rng->NextFloat();
  RasterizeObject(
      size,
      [=](float u, float v) {
        return SoftInside(std::sqrt(u * u + v * v), radius);
      },
      [=](float u, float v) {
        float r = std::sqrt(u * u + v * v) / radius;
        return LerpColor(center, rim, Clamp(r * r, 0.0f, 1.0f));
      },
      patch, mask);
}

void RenderBall(int size, const ObjectStyle& style, Rng* rng, ImageF* patch,
                ImageF* mask) {
  Color3 base = JitterColor(Color3{0.15f, 0.25f, 0.85f}, style.hue_jitter, rng);
  float radius = 0.9f;
  float hx = -0.35f + 0.2f * style.shape_jitter * rng->NextFloat();
  float hy = -0.35f;
  RasterizeObject(
      size,
      [=](float u, float v) {
        return SoftInside(std::sqrt(u * u + v * v), radius);
      },
      [=](float u, float v) {
        // Lambert-ish shading plus a specular highlight near (hx, hy).
        float r2 = (u * u + v * v) / (radius * radius);
        float shade = 1.0f - 0.55f * r2;
        float dhx = u - hx;
        float dhy = v - hy;
        float spec = std::exp(-12.0f * (dhx * dhx + dhy * dhy));
        Color3 c{base.r * shade + spec, base.g * shade + spec,
                 base.b * shade + spec};
        return c;
      },
      patch, mask);
}

void RenderFish(int size, const ObjectStyle& style, Rng* rng, ImageF* patch,
                ImageF* mask) {
  Color3 body = JitterColor(Color3{0.95f, 0.55f, 0.1f}, style.hue_jitter, rng);
  Color3 stripe = JitterColor(Color3{0.98f, 0.95f, 0.9f}, style.hue_jitter, rng);
  float stripes = 4.0f + 2.0f * rng->NextFloat();
  float phase = rng->NextFloat() * 3.14f;
  RasterizeObject(
      size,
      [=](float u, float v) {
        // Body: ellipse in the left 3/4; tail: triangle on the right.
        float bu = (u + 0.25f) / 0.7f;
        float bv = v / 0.45f;
        float body_d = std::sqrt(bu * bu + bv * bv);
        float cover = SoftInside(body_d, 1.0f);
        if (u > 0.35f && u < 0.95f) {
          float spread = (u - 0.35f) / 0.6f * 0.5f;
          if (std::fabs(v) < spread) cover = std::max(cover, 1.0f);
        }
        return cover;
      },
      [=](float u, float v) {
        (void)v;
        float s = 0.5f + 0.5f * std::sin(stripes * 3.14159f * u + phase);
        return s > 0.55f ? stripe : body;
      },
      patch, mask);
}

void RenderStar(int size, const ObjectStyle& style, Rng* rng, ImageF* patch,
                ImageF* mask) {
  Color3 bright = JitterColor(Color3{0.98f, 0.9f, 0.35f}, style.hue_jitter, rng);
  Color3 edge = JitterColor(Color3{0.9f, 0.6f, 0.1f}, style.hue_jitter, rng);
  float phase = static_cast<float>(rng->NextDouble(0.0, 2.0 * M_PI));
  int points = 5;
  float inner = 0.38f + 0.1f * style.shape_jitter * rng->NextFloat();
  RasterizeObject(
      size,
      [=](float u, float v) {
        float r = std::sqrt(u * u + v * v);
        float theta = std::atan2(v, u) + phase;
        // Star radius oscillates between inner and 0.95.
        float t = 0.5f + 0.5f * std::cos(points * theta);
        float rad = inner + (0.95f - inner) * std::pow(t, 3.0f);
        return SoftInside(r, rad);
      },
      [=](float u, float v) {
        float r = std::sqrt(u * u + v * v);
        return LerpColor(bright, edge, Clamp(r, 0.0f, 1.0f));
      },
      patch, mask);
}

void RenderLeaf(int size, const ObjectStyle& style, Rng* rng, ImageF* patch,
                ImageF* mask) {
  Color3 blade = JitterColor(Color3{0.15f, 0.55f, 0.2f}, style.hue_jitter, rng);
  Color3 vein = JitterColor(Color3{0.35f, 0.75f, 0.35f}, style.hue_jitter, rng);
  float width = 0.5f + 0.2f * style.shape_jitter * rng->NextFloat();
  RasterizeObject(
      size,
      [=](float u, float v) {
        // Pointed ellipse: width tapers toward both tips along u.
        float taper = 1.0f - u * u;
        if (taper <= 0.0f) return 0.0f;
        float half = width * taper;
        return SoftInside(std::fabs(v), half, 0.06f);
      },
      [=](float u, float v) {
        if (std::fabs(v) < 0.05f) return vein;       // mid-vein
        if (std::fmod(std::fabs(u * 6.0f + v * 3.0f), 1.0f) < 0.12f) return vein;
        return blade;
      },
      patch, mask);
}

}  // namespace

void RenderObject(ObjectClass cls, int size, const ObjectStyle& style,
                  Rng* rng, ImageF* patch, ImageF* mask) {
  WALRUS_CHECK(patch != nullptr && mask != nullptr && rng != nullptr);
  WALRUS_CHECK_GE(size, 4);
  switch (cls) {
    case ObjectClass::kFlower:
      RenderFlower(size, style, rng, patch, mask);
      return;
    case ObjectClass::kSun:
      RenderSun(size, style, rng, patch, mask);
      return;
    case ObjectClass::kBall:
      RenderBall(size, style, rng, patch, mask);
      return;
    case ObjectClass::kFish:
      RenderFish(size, style, rng, patch, mask);
      return;
    case ObjectClass::kStar:
      RenderStar(size, style, rng, patch, mask);
      return;
    case ObjectClass::kLeaf:
      RenderLeaf(size, style, rng, patch, mask);
      return;
  }
  WALRUS_CHECK(false) << "unknown object class";
}

}  // namespace walrus
