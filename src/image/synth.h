#ifndef WALRUS_IMAGE_SYNTH_H_
#define WALRUS_IMAGE_SYNTH_H_

#include "common/random.h"
#include "image/image.h"

namespace walrus {

/// Procedural texture and object rendering used to build the synthetic
/// labelled dataset that replaces the paper's `misc` 10,000-JPEG collection
/// (see DESIGN.md section 2). Everything is deterministic given an Rng.

/// Simple RGB triple in [0,1].
struct Color3 {
  float r = 0.0f;
  float g = 0.0f;
  float b = 0.0f;
};

/// Linearly interpolates between two colors (t in [0,1]).
Color3 LerpColor(const Color3& a, const Color3& b, float t);

// ---------------------------------------------------------------------------
// Background textures.
// ---------------------------------------------------------------------------

/// Uniform color fill.
ImageF MakeSolid(int w, int h, const Color3& color);

/// Linear gradient from `top` to `bottom` (vertical) or left to right.
ImageF MakeLinearGradient(int w, int h, const Color3& from, const Color3& to,
                          bool horizontal = false);

/// Alternating cells of two colors.
ImageF MakeCheckerboard(int w, int h, int cell, const Color3& c0,
                        const Color3& c1);

/// Alternating bands of two colors with the given period (pixels).
ImageF MakeStripes(int w, int h, int period, bool horizontal, const Color3& c0,
                   const Color3& c1);

/// Smooth multi-octave value noise modulating between two colors.
/// `scale` is the base feature size in pixels; larger = smoother.
ImageF MakeValueNoise(int w, int h, int scale, const Color3& c0,
                      const Color3& c1, Rng* rng, int octaves = 3);

/// Staggered brick courses with mortar lines (the texture behind the paper's
/// Figure 7(d) false positive).
ImageF MakeBrickWall(int w, int h, int brick_w, int brick_h, int mortar,
                     const Color3& brick, const Color3& grout, Rng* rng);

/// Grass-like texture: noisy green with vertical streaks.
ImageF MakeGrass(int w, int h, const Color3& base, Rng* rng);

// ---------------------------------------------------------------------------
// Object classes.
// ---------------------------------------------------------------------------

/// Object classes composited onto scenes. Each class has a distinctive
/// color/shape/texture footprint so region signatures separate them.
enum class ObjectClass : int {
  kFlower = 0,   // red/pink petals around a yellow core
  kSun = 1,      // bright warm disk with glow falloff
  kBall = 2,     // shaded blue sphere with highlight
  kFish = 3,     // striped orange ellipse with tail
  kStar = 4,     // five-pointed bright star
  kLeaf = 5,     // green pointed ellipse with mid-vein
};

inline constexpr int kNumObjectClasses = 6;

const char* ObjectClassName(ObjectClass cls);

/// Per-instance appearance jitter so two instances of a class are similar
/// but not identical (color wobble, petal count, stripe phase...).
struct ObjectStyle {
  float hue_jitter = 0.04f;    // max per-channel color wobble
  float shape_jitter = 0.15f;  // relative geometric wobble
};

/// Renders one object instance into a size x size RGB patch plus a 1-channel
/// alpha mask (1 inside the object, 0 outside, soft edge). The patch
/// background (mask==0 area) is undefined; always composite through the mask.
void RenderObject(ObjectClass cls, int size, const ObjectStyle& style,
                  Rng* rng, ImageF* patch, ImageF* mask);

}  // namespace walrus

#endif  // WALRUS_IMAGE_SYNTH_H_
