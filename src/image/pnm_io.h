#ifndef WALRUS_IMAGE_PNM_IO_H_
#define WALRUS_IMAGE_PNM_IO_H_

#include <string>

#include "image/image.h"

namespace walrus {

/// Minimal NetPBM codec: binary PPM (P6, 3-channel RGB) and binary PGM
/// (P5, 1-channel gray), 8-bit samples. This is the library's on-disk image
/// interchange format (stand-in for the paper's ImageMagick dependency).

/// Writes `image` as P6 (3-channel) or P5 (1-channel). Non-RGB 3-channel
/// images are written channel-as-is (callers should convert first).
Status WritePnm(const ImageF& image, const std::string& path);

/// Reads a P2/P3 (ASCII) or P5/P6 (binary) file; samples are scaled to
/// [0,1]. Color variants get ColorSpace::kRGB, gray variants kGray.
Result<ImageF> ReadPnm(const std::string& path);

/// In-memory variants (used by tests and the page-file round-trip tests).
Result<std::vector<uint8_t>> EncodePnm(const ImageF& image);
Result<ImageF> DecodePnm(const std::vector<uint8_t>& bytes);

}  // namespace walrus

#endif  // WALRUS_IMAGE_PNM_IO_H_
