#include "image/transform.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

#include "common/check.h"

namespace walrus {
namespace {

ImageF ResizeNearest(const ImageF& in, int nw, int nh) {
  ImageF out(nw, nh, in.channels(), in.color_space());
  for (int y = 0; y < nh; ++y) {
    int sy = Clamp(static_cast<int>((y + 0.5) * in.height() / nh), 0,
                   in.height() - 1);
    for (int x = 0; x < nw; ++x) {
      int sx = Clamp(static_cast<int>((x + 0.5) * in.width() / nw), 0,
                     in.width() - 1);
      for (int c = 0; c < in.channels(); ++c) {
        out.At(c, x, y) = in.At(c, sx, sy);
      }
    }
  }
  return out;
}

ImageF ResizeBilinear(const ImageF& in, int nw, int nh) {
  ImageF out(nw, nh, in.channels(), in.color_space());
  double sx_scale = static_cast<double>(in.width()) / nw;
  double sy_scale = static_cast<double>(in.height()) / nh;
  for (int y = 0; y < nh; ++y) {
    double fy = (y + 0.5) * sy_scale - 0.5;
    int y0 = static_cast<int>(std::floor(fy));
    double wy = fy - y0;
    for (int x = 0; x < nw; ++x) {
      double fx = (x + 0.5) * sx_scale - 0.5;
      int x0 = static_cast<int>(std::floor(fx));
      double wx = fx - x0;
      for (int c = 0; c < in.channels(); ++c) {
        double v00 = in.AtClamped(c, x0, y0);
        double v10 = in.AtClamped(c, x0 + 1, y0);
        double v01 = in.AtClamped(c, x0, y0 + 1);
        double v11 = in.AtClamped(c, x0 + 1, y0 + 1);
        double top = v00 + (v10 - v00) * wx;
        double bot = v01 + (v11 - v01) * wx;
        out.At(c, x, y) = static_cast<float>(top + (bot - top) * wy);
      }
    }
  }
  return out;
}

ImageF ResizeBoxAverage(const ImageF& in, int nw, int nh) {
  ImageF out(nw, nh, in.channels(), in.color_space());
  for (int y = 0; y < nh; ++y) {
    int sy0 = y * in.height() / nh;
    int sy1 = std::max(sy0 + 1, (y + 1) * in.height() / nh);
    sy1 = std::min(sy1, in.height());
    for (int x = 0; x < nw; ++x) {
      int sx0 = x * in.width() / nw;
      int sx1 = std::max(sx0 + 1, (x + 1) * in.width() / nw);
      sx1 = std::min(sx1, in.width());
      double count = static_cast<double>(sy1 - sy0) * (sx1 - sx0);
      for (int c = 0; c < in.channels(); ++c) {
        double sum = 0.0;
        for (int sy = sy0; sy < sy1; ++sy) {
          for (int sx = sx0; sx < sx1; ++sx) sum += in.At(c, sx, sy);
        }
        out.At(c, x, y) = static_cast<float>(sum / count);
      }
    }
  }
  return out;
}

}  // namespace

ImageF Resize(const ImageF& image, int new_width, int new_height,
              ResizeFilter filter) {
  WALRUS_CHECK(new_width > 0 && new_height > 0);
  WALRUS_CHECK(!image.empty());
  switch (filter) {
    case ResizeFilter::kNearest:
      return ResizeNearest(image, new_width, new_height);
    case ResizeFilter::kBilinear:
      return ResizeBilinear(image, new_width, new_height);
    case ResizeFilter::kBoxAverage:
      return ResizeBoxAverage(image, new_width, new_height);
  }
  return ResizeBilinear(image, new_width, new_height);
}

ImageF FlipHorizontal(const ImageF& image) {
  ImageF out(image.width(), image.height(), image.channels(),
             image.color_space());
  for (int c = 0; c < image.channels(); ++c) {
    for (int y = 0; y < image.height(); ++y) {
      for (int x = 0; x < image.width(); ++x) {
        out.At(c, x, y) = image.At(c, image.width() - 1 - x, y);
      }
    }
  }
  return out;
}

ImageF FlipVertical(const ImageF& image) {
  ImageF out(image.width(), image.height(), image.channels(),
             image.color_space());
  for (int c = 0; c < image.channels(); ++c) {
    for (int y = 0; y < image.height(); ++y) {
      for (int x = 0; x < image.width(); ++x) {
        out.At(c, x, y) = image.At(c, x, image.height() - 1 - y);
      }
    }
  }
  return out;
}

ImageF Rotate90(const ImageF& image) {
  ImageF out(image.height(), image.width(), image.channels(),
             image.color_space());
  for (int c = 0; c < image.channels(); ++c) {
    for (int y = 0; y < image.height(); ++y) {
      for (int x = 0; x < image.width(); ++x) {
        out.At(c, image.height() - 1 - y, x) = image.At(c, x, y);
      }
    }
  }
  return out;
}

ImageF Rotate(const ImageF& image, float degrees, float fill) {
  ImageF out(image.width(), image.height(), image.channels(),
             image.color_space());
  double radians = degrees * M_PI / 180.0;
  double cos_a = std::cos(radians);
  double sin_a = std::sin(radians);
  double cx = 0.5 * (image.width() - 1);
  double cy = 0.5 * (image.height() - 1);
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      // Inverse-map the output pixel into the source.
      double dx = x - cx;
      double dy = y - cy;
      double sx = cos_a * dx + sin_a * dy + cx;
      double sy = -sin_a * dx + cos_a * dy + cy;
      int x0 = static_cast<int>(std::floor(sx));
      int y0 = static_cast<int>(std::floor(sy));
      double wx = sx - x0;
      double wy = sy - y0;
      for (int c = 0; c < image.channels(); ++c) {
        auto sample = [&](int xi, int yi) -> double {
          if (xi < 0 || xi >= image.width() || yi < 0 ||
              yi >= image.height()) {
            return fill;
          }
          return image.At(c, xi, yi);
        };
        double top = sample(x0, y0) + (sample(x0 + 1, y0) - sample(x0, y0)) * wx;
        double bot =
            sample(x0, y0 + 1) + (sample(x0 + 1, y0 + 1) - sample(x0, y0 + 1)) * wx;
        out.At(c, x, y) = static_cast<float>(top + (bot - top) * wy);
      }
    }
  }
  return out;
}

ImageF Translate(const ImageF& image, int dx, int dy, float fill) {
  ImageF out(image.width(), image.height(), image.channels(),
             image.color_space());
  out.Fill(fill);
  for (int c = 0; c < image.channels(); ++c) {
    for (int y = 0; y < image.height(); ++y) {
      int sy = y - dy;
      if (sy < 0 || sy >= image.height()) continue;
      for (int x = 0; x < image.width(); ++x) {
        int sx = x - dx;
        if (sx < 0 || sx >= image.width()) continue;
        out.At(c, x, y) = image.At(c, sx, sy);
      }
    }
  }
  return out;
}

ImageF TranslateWrap(const ImageF& image, int dx, int dy) {
  ImageF out(image.width(), image.height(), image.channels(),
             image.color_space());
  int w = image.width();
  int h = image.height();
  auto mod = [](int a, int m) { return ((a % m) + m) % m; };
  for (int c = 0; c < image.channels(); ++c) {
    for (int y = 0; y < h; ++y) {
      int sy = mod(y - dy, h);
      for (int x = 0; x < w; ++x) {
        out.At(c, x, y) = image.At(c, mod(x - dx, w), sy);
      }
    }
  }
  return out;
}

void Composite(ImageF* canvas, const ImageF& patch, int x, int y,
               const ImageF* mask) {
  WALRUS_CHECK(canvas != nullptr);
  WALRUS_CHECK_EQ(canvas->channels(), patch.channels());
  if (mask != nullptr) {
    WALRUS_CHECK_EQ(mask->width(), patch.width());
    WALRUS_CHECK_EQ(mask->height(), patch.height());
    WALRUS_CHECK_EQ(mask->channels(), 1);
  }
  for (int py = 0; py < patch.height(); ++py) {
    int cy = y + py;
    if (cy < 0 || cy >= canvas->height()) continue;
    for (int px = 0; px < patch.width(); ++px) {
      int cx = x + px;
      if (cx < 0 || cx >= canvas->width()) continue;
      float alpha = mask != nullptr ? mask->At(0, px, py) : 1.0f;
      if (alpha <= 0.0f) continue;
      for (int c = 0; c < patch.channels(); ++c) {
        float dst = canvas->At(c, cx, cy);
        canvas->At(c, cx, cy) = dst + alpha * (patch.At(c, px, py) - dst);
      }
    }
  }
}

ImageF AddGaussianNoise(const ImageF& image, float sigma, Rng* rng) {
  WALRUS_CHECK(rng != nullptr);
  ImageF out = image;
  for (int c = 0; c < out.channels(); ++c) {
    for (float& v : out.Plane(c)) {
      v = Clamp(v + sigma * static_cast<float>(rng->NextGaussian()), 0.0f,
                1.0f);
    }
  }
  return out;
}

ImageF Posterize(const ImageF& image, int levels) {
  WALRUS_CHECK_GE(levels, 2);
  ImageF out = image;
  float scale = static_cast<float>(levels - 1);
  for (int c = 0; c < out.channels(); ++c) {
    for (float& v : out.Plane(c)) {
      v = std::round(Clamp(v, 0.0f, 1.0f) * scale) / scale;
    }
  }
  return out;
}

}  // namespace walrus
