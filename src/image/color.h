#ifndef WALRUS_IMAGE_COLOR_H_
#define WALRUS_IMAGE_COLOR_H_

#include "image/image.h"

namespace walrus {

/// Per-pixel color conversions. All channels are kept in [0,1]:
/// chroma-like components (Cb/Cr, I/Q) are shifted and scaled so that the
/// neutral value maps to 0.5, matching how the paper stores "YCC" planes for
/// wavelet signatures.

/// RGB -> YCbCr (ITU-R BT.601, "YCC" in the paper).
void RgbToYccPixel(float r, float g, float b, float* y, float* cb, float* cr);
void YccToRgbPixel(float y, float cb, float cr, float* r, float* g, float* b);

/// RGB -> YIQ (NTSC), I and Q normalized into [0,1].
void RgbToYiqPixel(float r, float g, float b, float* y, float* i, float* q);
void YiqToRgbPixel(float y, float i, float q, float* r, float* g, float* b);

/// RGB -> HSV, hue normalized into [0,1].
void RgbToHsvPixel(float r, float g, float b, float* h, float* s, float* v);
void HsvToRgbPixel(float h, float s, float v, float* r, float* g, float* b);

/// Converts a whole 3-channel image to the target color space. Supported
/// pairs: RGB<->YCC, RGB<->YIQ, RGB<->HSV, and identity. Conversions between
/// two non-RGB spaces go through RGB. kGray targets produce a 1-channel luma
/// image from RGB (BT.601 weights).
Result<ImageF> ConvertColorSpace(const ImageF& image, ColorSpace target);

/// Adds `delta` to every sample of every channel (simulates a global color
/// intensity shift) and clamps to [0,1].
ImageF ShiftIntensity(const ImageF& image, float delta);

}  // namespace walrus

#endif  // WALRUS_IMAGE_COLOR_H_
