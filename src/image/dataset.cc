#include "image/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/serialize.h"
#include "common/status.h"
#include "image/pnm_io.h"
#include "image/transform.h"

#include "common/check.h"

namespace walrus {
namespace {

inline constexpr int kNumBackgroundKinds = 6;

ImageF MakeBackground(int kind, int w, int h, Rng* rng) {
  switch (kind % kNumBackgroundKinds) {
    case 0: {  // green foliage noise (the paper's flower-query backdrop)
      Color3 dark{0.05f, 0.3f, 0.08f};
      Color3 light{0.25f, 0.6f, 0.2f};
      return MakeValueNoise(w, h, 8, dark, light, rng, 3);
    }
    case 1: {  // sky gradient
      Color3 top{0.35f, 0.55f, 0.9f};
      Color3 bottom{0.75f, 0.85f, 0.98f};
      return MakeLinearGradient(w, h, top, bottom);
    }
    case 2: {  // sandy noise
      Color3 dark{0.7f, 0.6f, 0.4f};
      Color3 light{0.9f, 0.82f, 0.6f};
      return MakeValueNoise(w, h, 12, dark, light, rng, 2);
    }
    case 3: {  // brick wall
      Color3 brick{0.6f, 0.25f, 0.15f};
      Color3 grout{0.75f, 0.7f, 0.65f};
      return MakeBrickWall(w, h, 18, 8, 2, brick, grout, rng);
    }
    case 4: {  // water stripes
      Color3 c0{0.1f, 0.3f, 0.55f};
      Color3 c1{0.2f, 0.45f, 0.7f};
      return MakeStripes(w, h, 10, true, c0, c1);
    }
    default: {  // grass
      Color3 base{0.2f, 0.55f, 0.15f};
      return MakeGrass(w, h, base, rng);
    }
  }
}

}  // namespace

namespace {

/// Natural habitat per class: flower->foliage, sun->sky, ball->sand,
/// fish->water, star->sky(brick for variety), leaf->grass.
int PreferredBackground(ObjectClass label) {
  switch (label) {
    case ObjectClass::kFlower:
      return 0;  // foliage
    case ObjectClass::kSun:
      return 1;  // sky
    case ObjectClass::kBall:
      return 2;  // sand
    case ObjectClass::kStar:
      return 3;  // brick
    case ObjectClass::kFish:
      return 4;  // water
    case ObjectClass::kLeaf:
      return 5;  // grass
  }
  return 0;
}

}  // namespace

LabeledImage GenerateScene(int id, ObjectClass label,
                           const DatasetParams& params, Rng* rng) {
  LabeledImage scene;
  scene.id = id;
  scene.label = label;
  scene.background_kind =
      rng->NextBernoulli(params.background_correlation)
          ? PreferredBackground(label)
          : rng->NextInt(0, kNumBackgroundKinds - 1);
  scene.image = MakeBackground(scene.background_kind, params.width,
                               params.height, rng);

  int min_dim = std::min(params.width, params.height);
  ObjectStyle style;

  // Distractors first so dominant objects are composited on top of them.
  int num_distractors =
      rng->NextInt(params.min_distractors, params.max_distractors);
  for (int i = 0; i < num_distractors; ++i) {
    ObjectClass cls;
    do {
      cls = static_cast<ObjectClass>(rng->NextInt(0, kNumObjectClasses - 1));
    } while (cls == label);
    int size = std::max(
        8, static_cast<int>(min_dim * rng->NextDouble(0.12, 0.25)));
    ImageF patch, mask;
    RenderObject(cls, size, style, rng, &patch, &mask);
    int x = rng->NextInt(-size / 4, params.width - 3 * size / 4);
    int y = rng->NextInt(-size / 4, params.height - 3 * size / 4);
    Composite(&scene.image, patch, x, y, &mask);
  }

  int num_dominant = rng->NextInt(params.min_dominant, params.max_dominant);
  for (int i = 0; i < num_dominant; ++i) {
    int size = std::max(
        8, static_cast<int>(min_dim *
                            rng->NextDouble(params.min_scale, params.max_scale)));
    ImageF patch, mask;
    RenderObject(label, size, style, rng, &patch, &mask);
    int x = rng->NextInt(-size / 8, params.width - 7 * size / 8);
    int y = rng->NextInt(-size / 8, params.height - 7 * size / 8);
    Composite(&scene.image, patch, x, y, &mask);
    scene.placements.push_back({x, y, size});
  }

  if (params.noise_sigma > 0.0f) {
    scene.image = AddGaussianNoise(scene.image, params.noise_sigma, rng);
  }
  return scene;
}

std::vector<LabeledImage> GenerateDataset(const DatasetParams& params) {
  WALRUS_CHECK_GT(params.num_images, 0);
  Rng rng(params.seed, /*stream=*/0x77a1f00dULL);
  std::vector<LabeledImage> dataset;
  dataset.reserve(params.num_images);
  for (int i = 0; i < params.num_images; ++i) {
    ObjectClass label = static_cast<ObjectClass>(i % kNumObjectClasses);
    dataset.push_back(GenerateScene(i, label, params, &rng));
  }
  return dataset;
}

Status SaveDataset(const std::vector<LabeledImage>& dataset,
                   const std::string& dir) {
  std::string manifest;
  for (const LabeledImage& scene : dataset) {
    std::string path = dir + "/img_" + std::to_string(scene.id) + ".ppm";
    WALRUS_RETURN_IF_ERROR(WritePnm(scene.image, path));
    manifest += std::to_string(scene.id) + " " +
                std::to_string(static_cast<int>(scene.label)) + " " +
                std::to_string(scene.background_kind) + "\n";
  }
  std::vector<uint8_t> bytes(manifest.begin(), manifest.end());
  return WriteFileBytes(dir + "/labels.txt", bytes);
}

}  // namespace walrus
