#ifndef WALRUS_EVAL_GROUND_TRUTH_H_
#define WALRUS_EVAL_GROUND_TRUTH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "eval/metrics.h"
#include "image/dataset.h"

namespace walrus {

/// Relevance oracle over a synthetic dataset: two images are mutually
/// relevant when their dominant object class matches (see DESIGN.md
/// section 2 on the misc-dataset substitution).
class GroundTruth {
 public:
  explicit GroundTruth(const std::vector<LabeledImage>& dataset);

  /// True when both ids exist and share a label.
  bool Relevant(uint64_t query_id, uint64_t candidate_id) const;

  /// Relevance closure for a fixed query, excluding the query itself
  /// (retrieving the query image back is neither rewarded nor needed).
  RelevanceFn ForQuery(uint64_t query_id) const;

  /// Number of relevant items for the query (excluding itself).
  int RelevantCount(uint64_t query_id) const;

  /// Label of an image id (-1 if unknown).
  int LabelOf(uint64_t id) const;

 private:
  std::unordered_map<uint64_t, int> labels_;
  std::unordered_map<int, int> label_counts_;
};

}  // namespace walrus

#endif  // WALRUS_EVAL_GROUND_TRUTH_H_
