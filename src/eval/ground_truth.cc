#include "eval/ground_truth.h"

namespace walrus {

GroundTruth::GroundTruth(const std::vector<LabeledImage>& dataset) {
  for (const LabeledImage& image : dataset) {
    int label = static_cast<int>(image.label);
    labels_[static_cast<uint64_t>(image.id)] = label;
    ++label_counts_[label];
  }
}

bool GroundTruth::Relevant(uint64_t query_id, uint64_t candidate_id) const {
  auto q = labels_.find(query_id);
  auto c = labels_.find(candidate_id);
  if (q == labels_.end() || c == labels_.end()) return false;
  return q->second == c->second;
}

RelevanceFn GroundTruth::ForQuery(uint64_t query_id) const {
  return [this, query_id](uint64_t candidate) {
    if (candidate == query_id) return false;
    return Relevant(query_id, candidate);
  };
}

int GroundTruth::RelevantCount(uint64_t query_id) const {
  auto q = labels_.find(query_id);
  if (q == labels_.end()) return 0;
  auto count = label_counts_.find(q->second);
  if (count == label_counts_.end()) return 0;
  return count->second - 1;  // exclude the query itself
}

int GroundTruth::LabelOf(uint64_t id) const {
  auto it = labels_.find(id);
  return it == labels_.end() ? -1 : it->second;
}

}  // namespace walrus
