#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace walrus {

double PrecisionAtK(const std::vector<uint64_t>& retrieved,
                    const RelevanceFn& relevant, int k) {
  WALRUS_CHECK_GE(k, 1);
  int hits = 0;
  int limit = std::min<int>(k, static_cast<int>(retrieved.size()));
  for (int i = 0; i < limit; ++i) {
    if (relevant(retrieved[i])) ++hits;
  }
  return static_cast<double>(hits) / k;
}

double RecallAtK(const std::vector<uint64_t>& retrieved,
                 const RelevanceFn& relevant, int k, int total_relevant) {
  WALRUS_CHECK_GE(k, 1);
  if (total_relevant <= 0) return 0.0;
  int hits = 0;
  int limit = std::min<int>(k, static_cast<int>(retrieved.size()));
  for (int i = 0; i < limit; ++i) {
    if (relevant(retrieved[i])) ++hits;
  }
  return static_cast<double>(hits) / total_relevant;
}

double AveragePrecision(const std::vector<uint64_t>& retrieved,
                        const RelevanceFn& relevant, int total_relevant) {
  if (total_relevant <= 0) return 0.0;
  int hits = 0;
  double sum = 0.0;
  for (size_t i = 0; i < retrieved.size(); ++i) {
    if (relevant(retrieved[i])) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / total_relevant;
}

double NdcgAtK(const std::vector<uint64_t>& retrieved,
               const RelevanceFn& relevant, int k, int total_relevant) {
  WALRUS_CHECK_GE(k, 1);
  if (total_relevant <= 0) return 0.0;
  double dcg = 0.0;
  int limit = std::min<int>(k, static_cast<int>(retrieved.size()));
  for (int i = 0; i < limit; ++i) {
    if (relevant(retrieved[i])) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  double ideal = 0.0;
  int ideal_hits = std::min(k, total_relevant);
  for (int i = 0; i < ideal_hits; ++i) {
    ideal += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return ideal > 0.0 ? dcg / ideal : 0.0;
}

double MeanOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace walrus
