#ifndef WALRUS_EVAL_METRICS_H_
#define WALRUS_EVAL_METRICS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace walrus {

/// Retrieval-quality metrics used to quantify the paper's Figure 7/8
/// comparison (the paper argues by eyeballing two top-14 grids; with
/// synthetic ground truth we can score the same comparison numerically).

/// Relevance oracle: true when the candidate is relevant to the query.
using RelevanceFn = std::function<bool(uint64_t candidate)>;

/// Fraction of the first k retrieved ids that are relevant. If fewer than k
/// results exist, the missing tail counts as irrelevant (retrieval failed
/// to fill the page).
double PrecisionAtK(const std::vector<uint64_t>& retrieved,
                    const RelevanceFn& relevant, int k);

/// Fraction of all `total_relevant` items found in the first k.
double RecallAtK(const std::vector<uint64_t>& retrieved,
                 const RelevanceFn& relevant, int k, int total_relevant);

/// Average precision over the full retrieved list (AP).
double AveragePrecision(const std::vector<uint64_t>& retrieved,
                        const RelevanceFn& relevant, int total_relevant);

/// Normalized discounted cumulative gain at k with binary relevance:
/// DCG@k / IDCG@k, IDCG assuming `total_relevant` relevant items exist.
/// 0 when total_relevant <= 0.
double NdcgAtK(const std::vector<uint64_t>& retrieved,
               const RelevanceFn& relevant, int k, int total_relevant);

/// Mean of per-query values.
double MeanOf(const std::vector<double>& values);

}  // namespace walrus

#endif  // WALRUS_EVAL_METRICS_H_
